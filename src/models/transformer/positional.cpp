#include "models/transformer/positional.h"

#include <cmath>

namespace qdnn::models {

PositionalEncoding::PositionalEncoding(index_t max_len, index_t d_model)
    : max_len_(max_len), d_model_(d_model), table_{Shape{max_len, d_model}} {
  for (index_t pos = 0; pos < max_len; ++pos) {
    for (index_t i = 0; i < d_model; i += 2) {
      const double angle =
          pos / std::pow(10000.0, static_cast<double>(i) / d_model);
      table_.at(pos, i) = static_cast<float>(std::sin(angle));
      if (i + 1 < d_model)
        table_.at(pos, i + 1) = static_cast<float>(std::cos(angle));
    }
  }
}

void PositionalEncoding::add_to(Tensor& flat, index_t n, index_t t) const {
  QDNN_CHECK(t <= max_len_, "sequence length " << t << " exceeds max_len "
                                               << max_len_);
  QDNN_CHECK_EQ(flat.dim(0), n * t, "positional: rows");
  QDNN_CHECK_EQ(flat.dim(1), d_model_, "positional: d_model");
  for (index_t s = 0; s < n; ++s)
    for (index_t pos = 0; pos < t; ++pos) {
      float* row = flat.data() + (s * t + pos) * d_model_;
      const float* pe = table_.data() + pos * d_model_;
      for (index_t d = 0; d < d_model_; ++d) row[d] += pe[d];
    }
}

// ---------------------------------------------------------------------------
// PositionalScale
// ---------------------------------------------------------------------------

namespace {

// y = x·scale + PE, the exact operation order of Transformer::encode
// (x *= sqrt(d_model); pos.add_to(x)) so the stage is bit-identical to
// the training path.
void scale_add_pos(const float* in, float* out, index_t n, index_t t,
                   index_t d, float scale, const float* table) {
  for (index_t s = 0; s < n; ++s)
    for (index_t pos = 0; pos < t; ++pos) {
      const float* x = in + (s * t + pos) * d;
      float* y = out + (s * t + pos) * d;
      const float* pe = table + pos * d;
      for (index_t i = 0; i < d; ++i) y[i] = x[i] * scale + pe[i];
    }
}

}  // namespace

PositionalScale::PositionalScale(const PositionalEncoding& pos,
                                 std::string name)
    : pos_(&pos),
      scale_(std::sqrt(static_cast<float>(pos.d_model()))),
      name_(std::move(name)) {}

Shape PositionalScale::output_shape(const Shape& input_shape) const {
  QDNN_CHECK(input_shape.rank() == 3 && input_shape[2] == pos_->d_model(),
             name_ << ": expected [N, T, " << pos_->d_model() << "]");
  QDNN_CHECK(input_shape[1] <= pos_->max_len(),
             name_ << ": sequence length " << input_shape[1]
                   << " exceeds max_len " << pos_->max_len());
  return input_shape;
}

Tensor PositionalScale::forward(const Tensor& input) {
  output_shape(input.shape());  // validate
  Tensor out{input.shape()};
  scale_add_pos(input.data(), out.data(), input.dim(0), input.dim(1),
                pos_->d_model(), scale_, pos_->table().data());
  return out;
}

Tensor PositionalScale::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": serving-only stage (train through "
                             "Transformer::encode instead)");
  return {};
}

void PositionalScale::forward_into(const ConstTensorView& input,
                                   const TensorView& output, Workspace&) {
  output_shape(input.shape());  // validate
  QDNN_CHECK(output.shape() == input.shape(),
             name_ << ": bad output view " << output.shape());
  scale_add_pos(input.data(), output.data(), input.dim(0), input.dim(1),
                pos_->d_model(), scale_, pos_->table().data());
}

}  // namespace qdnn::models
