#include "runtime/decode_session.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "obs/trace.h"

namespace qdnn::runtime {

DecodeSession::DecodeSession(models::Transformer& model,
                             DecodeSessionConfig config)
    : model_(&model), config_(config), encoder_(model) {
  const models::TransformerConfig& mc = model_->config();
  // Validate the full ring geometry here, with messages naming the
  // config field — not via QDNN_DCHECKs deep inside the attention
  // kernels once a bad bound finally overruns a cache.
  QDNN_CHECK(config_.max_batch > 0,
             "DecodeSession: max_batch must be positive, got "
                 << config_.max_batch);
  // bos fills ring row 0 and step s embeds position s, so the deepest
  // step uses position max_steps − 1: max_steps == max_len is the exact
  // upper bound (the implicit-bos slot does not cost an extra position).
  QDNN_CHECK(config_.max_steps >= 1 && config_.max_steps <= mc.max_len,
             "DecodeSession: max_steps " << config_.max_steps
                                         << " outside [1, " << mc.max_len
                                         << "] (max_len)");
  QDNN_CHECK(config_.max_src >= 0,
             "DecodeSession: max_src must be non-negative (0 = the "
             "model's max_len), got "
                 << config_.max_src);
  d_model_ = mc.d_model;
  proj_dim_ = mc.proj_dim;
  vocab_ = mc.tgt_vocab;
  max_src_ = config_.max_src > 0 ? config_.max_src : mc.max_len;
  QDNN_CHECK(max_src_ <= mc.max_len,
             "DecodeSession: max_src " << max_src_ << " exceeds max_len "
                                       << mc.max_len);

  // Exclusivity first, before ANY model mutation: a rejected second
  // session must not flip the model to eval mode or freeze it.
  const index_t layers = model_->num_decoder_layers();
  QDNN_CHECK(layers > 0, "DecodeSession: model has no decoder layers");
  for (index_t l = 0; l < layers; ++l)
    QDNN_CHECK(!model_->decoder_layer(l).self_step().bound() &&
                   !model_->decoder_layer(l).cross_step().bound(),
               "DecodeSession: decoder already bound by another "
               "DecodeSession — destroy it before binding a new one");
  model_->set_training(false);

  // Flatten the decode-step pipeline: every decoder layer's stages, then
  // the output projection as the final stage.
  for (index_t l = 0; l < layers; ++l)
    model_->decoder_layer(l).flatten_into(stages_);
  model_->output_projection().flatten_into(stages_);
  nn::validate_pipeline(stages_, "DecodeSession");

  // Per-boundary row widths via the shape pipeline at batch 1 (widths are
  // batch-independent; every boundary keeps the batch leading).
  stage_width_.reserve(stages_.size());
  {
    auto width_of = [&](index_t b) {
      return b < 0 ? d_model_
                   : stage_width_[static_cast<std::size_t>(b)];
    };
    for (const nn::PipelineStage& st : stages_) {
      if (st.is_add()) {
        QDNN_CHECK(width_of(st.input) == width_of(st.addend),
                   "DecodeSession: residual-add operand widths "
                       << width_of(st.input) << " vs "
                       << width_of(st.addend));
        stage_width_.push_back(width_of(st.input));
      } else {
        const Shape out =
            st.module->output_shape(Shape{1, width_of(st.input)});
        QDNN_CHECK(out.rank() == 2 && out[0] == 1,
                   st.module->name() << ": step stage output " << out
                                     << " is not [N, W]");
        stage_width_.push_back(out[1]);
      }
    }
  }
  QDNN_CHECK(stage_width_.back() == vocab_,
             "DecodeSession: final stage width " << stage_width_.back()
                                                 << " != tgt_vocab "
                                                 << vocab_);

  // Bind step: prepack the decode-side weights and drop training caches
  // before warm-up, so the watermark never includes packing scratch.
  if (config_.freeze) {
    model_->tgt_embedding().freeze();
    for (index_t l = 0; l < layers; ++l) model_->decoder_layer(l).freeze();
    model_->output_projection().freeze();
  }

  // Paged KV memory: one pool of uniform pages backs both attention
  // kinds; per-row page tables start all-sentinel (parked/warming rows
  // read defined zero memory).  pool_pages = 0 defaults to the dense
  // worst case — every row fully deep — so oversubscription never
  // happens unless explicitly configured.
  QDNN_CHECK(config_.page_tokens >= 1 &&
                 (config_.page_tokens & (config_.page_tokens - 1)) == 0,
             "DecodeSession: page_tokens must be a power of two, got "
                 << config_.page_tokens);
  page_tokens_ = config_.page_tokens;
  page_shift_ = 0;
  while ((index_t{1} << page_shift_) < page_tokens_) ++page_shift_;
  self_ppr_ = (config_.max_steps + page_tokens_ - 1) >> page_shift_;
  cross_ppr_ = (max_src_ + page_tokens_ - 1) >> page_shift_;
  const index_t page_floats = layers * 2 * page_tokens_ * proj_dim_;
  const index_t pool_pages =
      config_.pool_pages > 0
          ? config_.pool_pages
          : config_.max_batch * (self_ppr_ + cross_ppr_);
  QDNN_CHECK(pool_pages >= self_ppr_ + cross_ppr_,
             "DecodeSession: pool_pages "
                 << pool_pages << " cannot cover one worst-case row ("
                 << self_ppr_ + cross_ppr_
                 << " pages) — a drained session could never admit");
  pool_.init(pool_pages, page_floats);
  prefix_cache_.init(config_.prefix_cache_entries, max_src_, cross_ppr_);
  self_table_.assign(
      static_cast<std::size_t>(config_.max_batch * self_ppr_),
      KvPagePool::kSentinelPage);
  cross_table_.assign(
      static_cast<std::size_t>(config_.max_batch * cross_ppr_),
      KvPagePool::kSentinelPage);
  lookup_tokens_.reserve(static_cast<std::size_t>(max_src_));
  lookup_pages_.reserve(static_cast<std::size_t>(cross_ppr_));

  embed_buf_ = Tensor{Shape{config_.max_batch * d_model_}};
  buffers_.reserve(stages_.size());
  for (index_t w : stage_width_)
    buffers_.emplace_back(Shape{config_.max_batch * w});
  next_tokens_.reserve(static_cast<std::size_t>(config_.max_batch));
  feed_tokens_.reserve(static_cast<std::size_t>(config_.max_batch));
  done_.reserve(static_cast<std::size_t>(config_.max_batch));
  // Per-row state at full width from the start: the step adapters hold
  // pointers into these across rebinds, and prime_row/reset_row must
  // never grow them.
  row_steps_.assign(static_cast<std::size_t>(config_.max_batch), 0);
  src_lengths_.assign(static_cast<std::size_t>(config_.max_batch), 0);
  // Every row starts parked (pinned at ring position 0) until its first
  // prime: unprimed rows ride the batch gemm without ever advancing.
  parked_.assign(static_cast<std::size_t>(config_.max_batch), 1);
  in_views_.resize(stages_.size());
  add_views_.resize(stages_.size());
  out_views_.resize(stages_.size());
  // Profiling slots: embed + every stage + argmax (see stage_profile()).
  stage_ns_.assign(stages_.size() + 2, 0);
  stage_calls_.assign(stages_.size() + 2, 0);

  // From the first bind on, an exception must not leave the model's
  // adapters pointing into this half-constructed (about-to-unwind)
  // session: unbind before rethrowing (the destructor will not run).
  try {
    bind_views(config_.max_batch);

    if (config_.warmup) {
      // Warm the solo staging slot (encoder + projection scratch), then
      // run one step at the deepest ring position (the widest score
      // buffers) against the all-sentinel tables — warming_ suppresses
      // page acquisition, and the sentinel page is defined zero memory —
      // and consolidate the workspace to the exact watermark.
      init_staging(solo_staging_);
      warming_ = true;
      primed_ = true;
      row_steps_.assign(static_cast<std::size_t>(config_.max_batch),
                        config_.max_steps - 1);
      src_lengths_.assign(static_cast<std::size_t>(config_.max_batch),
                          max_src_);
      feed_tokens_.assign(static_cast<std::size_t>(config_.max_batch), 0);
      run_step(feed_tokens_);
      warming_ = false;
      primed_ = false;
      row_steps_.assign(static_cast<std::size_t>(config_.max_batch), 0);
      src_lengths_.assign(static_cast<std::size_t>(config_.max_batch), 0);
      ws_.reset();
      ws_.consolidate();
    }
  } catch (...) {
    warming_ = false;
    unbind_all();
    throw;
  }
}

DecodeSession::~DecodeSession() { unbind_all(); }

void DecodeSession::unbind_all() {
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    model_->decoder_layer(l).self_step().unbind();
    model_->decoder_layer(l).cross_step().unbind();
  }
}

bool DecodeSession::fully_native() const {
  for (const nn::PipelineStage& st : stages_)
    if (!st.is_add() && !st.module->supports_forward_into()) return false;
  return true;
}

index_t DecodeSession::kv_cache_floats() const {
  // The whole KV footprint is the pool (usable pages plus the sentinel).
  return (pool_.pages() + 1) * pool_.page_floats();
}

index_t DecodeSession::row_steps(index_t row) const {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  return row_steps_[static_cast<std::size_t>(row)];
}

bool DecodeSession::row_parked(index_t row) const {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  return parked_[static_cast<std::size_t>(row)] != 0;
}

void DecodeSession::bind_views(index_t n) {
  // Rebuild the per-stage views and the adapter cache bindings for this
  // batch width.  The paged views carry the FULL max_batch-width tables
  // (a row's table slice never moves), so rebinding only resizes the
  // activation boundaries.  Shapes are inline and the views are POD, so
  // this never touches the heap; it runs at construction and when
  // prime() changes the batch width.
  const index_t pf = pool_.page_floats();
  const index_t slice = page_tokens_ * proj_dim_;
  for (index_t l = 0; l < model_->num_decoder_layers(); ++l) {
    models::DecoderLayer& layer = model_->decoder_layer(l);
    const index_t k_off = (2 * l) * slice;
    const index_t v_off = (2 * l + 1) * slice;
    layer.self_step().bind(
        models::PagedKvView{pool_.data(), self_table_.data(), pf,
                            self_ppr_, page_tokens_, k_off},
        models::PagedKvView{pool_.data(), self_table_.data(), pf,
                            self_ppr_, page_tokens_, v_off},
        config_.max_steps, &row_steps_);
    layer.cross_step().bind(
        models::PagedKvView{pool_.data(), cross_table_.data(), pf,
                            cross_ppr_, page_tokens_, k_off},
        models::PagedKvView{pool_.data(), cross_table_.data(), pf,
                            cross_ppr_, page_tokens_, v_off},
        max_src_, &src_lengths_);
  }

  auto boundary_data = [&](index_t b) -> float* {
    return b < 0 ? embed_buf_.data()
                 : buffers_[static_cast<std::size_t>(b)].data();
  };
  auto boundary_width = [&](index_t b) {
    return b < 0 ? d_model_ : stage_width_[static_cast<std::size_t>(b)];
  };
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    in_views_[i] = ConstTensorView(Shape{n, boundary_width(st.input)},
                                   boundary_data(st.input));
    add_views_[i] =
        st.is_add() ? ConstTensorView(Shape{n, boundary_width(st.addend)},
                                      boundary_data(st.addend))
                    : ConstTensorView{};
    out_views_[i] = TensorView(
        Shape{n, stage_width_[i]}, boundary_data(static_cast<index_t>(i)));
  }
  logits_view_ =
      ConstTensorView(Shape{n, vocab_}, buffers_.back().data());
  bound_n_ = n;
}

index_t DecodeSession::acquire_page_() {
  index_t page = pool_.acquire();
  // Cached prefixes whose only holder is the cache are reclaimable:
  // evict LRU entries until a page frees up or nothing is left to evict
  // (an eviction may free nothing when every page is still shared by a
  // live row — keep evicting, later entries may be sole holders).
  while (page < 0 && prefix_cache_.evict_one(pool_)) page = pool_.acquire();
  return page;
}

void DecodeSession::release_row_pages_(index_t row) {
  index_t* srow = self_table_.data() + row * self_ppr_;
  for (index_t p = 0; p < self_ppr_; ++p) {
    if (srow[p] != KvPagePool::kSentinelPage) {
      pool_.release(srow[p]);
      srow[p] = KvPagePool::kSentinelPage;
    }
  }
  index_t* crow = cross_table_.data() + row * cross_ppr_;
  for (index_t p = 0; p < cross_ppr_; ++p) {
    if (crow[p] != KvPagePool::kSentinelPage) {
      pool_.release(crow[p]);
      crow[p] = KvPagePool::kSentinelPage;
    }
  }
}

bool DecodeSession::ensure_row_step_capacity(index_t row) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  const index_t block =
      row_steps_[static_cast<std::size_t>(row)] >> page_shift_;
  QDNN_DCHECK(block < self_ppr_,
              "DecodeSession: step block " << block
                                           << " beyond the page table");
  index_t& slot =
      self_table_[static_cast<std::size_t>(row * self_ppr_ + block)];
  if (slot != KvPagePool::kSentinelPage) return true;
  const index_t page = acquire_page_();
  if (page < 0) return false;
  slot = page;
  return true;
}

void DecodeSession::prime(const Tensor& src_ids,
                          const std::vector<index_t>& src_lengths) {
  QDNN_CHECK(src_ids.rank() == 2, "DecodeSession: src_ids must be [N, T]");
  const index_t n = src_ids.dim(0), ts = src_ids.dim(1);
  QDNN_CHECK(n >= 1 && n <= config_.max_batch,
             "DecodeSession: batch size " << n << " outside [1, "
                                          << config_.max_batch << "]");
  QDNN_CHECK(ts >= 1 && ts <= max_src_,
             "DecodeSession: source length " << ts << " outside [1, "
                                             << max_src_ << "]");
  QDNN_CHECK(src_lengths.empty() ||
                 static_cast<index_t>(src_lengths.size()) == n,
             "DecodeSession: src_lengths holds "
                 << src_lengths.size() << " entries for batch " << n);
  for (std::size_t i = 0; i < src_lengths.size(); ++i)
    QDNN_CHECK(src_lengths[i] >= 0 && src_lengths[i] <= ts,
               "DecodeSession: src_lengths[" << i << "] = "
                                             << src_lengths[i]
                                             << " outside [0, " << ts
                                             << "] (0 = all valid)");

  // Row by row through the masked native encoder — the same kernels and
  // per-row masking as prime_row/prime_compute, so all three admission
  // paths stay bit-identical (and bit-identical to the training-path
  // encoder, hence to greedy_decode_reference).
  init_staging(solo_staging_);
  if (n != bound_n_) bind_views(n);
  for (index_t r = 0; r < n; ++r) {
    const auto ri = static_cast<std::size_t>(r);
    const index_t len =
        src_lengths.empty() || src_lengths[ri] == 0 ? ts : src_lengths[ri];
    prime_compute_impl(src_ids.data() + r * ts, ts, len, solo_staging_);
    commit_row_impl(r, solo_staging_);
  }
  primed_ = true;
}

void DecodeSession::prime_row(index_t row, const Tensor& src_ids,
                              index_t src_length) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  // prime_row IS prime_compute + commit_row over a private staging slot:
  // the synchronous and pool-fed admission paths share one code path, so
  // they cannot drift (bit-identical by construction).
  init_staging(solo_staging_);
  prime_compute(src_ids, src_length, solo_staging_);
  commit_row(row, solo_staging_);
}

void DecodeSession::init_staging(PrefillStaging& staging) const {
  const index_t floats =
      model_->num_decoder_layers() * max_src_ * proj_dim_;
  const bool fresh = staging.k.numel() != floats;
  if (fresh) {
    staging.k = Tensor{Shape{floats}};
    staging.v = Tensor{Shape{floats}};
    staging.tokens.reserve(static_cast<std::size_t>(max_src_));
    staging.page_ids.reserve(static_cast<std::size_t>(cross_ppr_));
  }
  if (fresh && config_.warmup) {
    // One dummy prefill at the deepest geometry discovers the slot's
    // workspace watermark (encoder activations + projection scratch), so
    // every later prime_compute through the slot is zero-alloc.  Rewind
    // the slot afterwards: committing it before a real prefill must still
    // be the "empty staging" error.
    Tensor ids{Shape{max_src_}};  // zero-filled: token id 0
    prime_compute(ids, /*src_length=*/0, staging);
    staging.ts = 0;
    staging.len = 0;
    staging.tokens.clear();
    staging.ws.reset();
    staging.ws.consolidate();
  }
}

ConstTensorView DecodeSession::encode_source(const float* ids, index_t ts,
                                             index_t len,
                                             PrefillStaging& staging) const {
  // One workspace frame for the whole prefill: the reset here is the
  // slot's only reset point, so the encoder activations and everything
  // the caller stacks after them (the cross projections) coexist.
  staging.ws.reset();
  const ConstTensorView ids_view(Shape{1, ts}, ids);
  const TensorView enc = staging.ws.take(Shape{1, ts, d_model_});
  encoder_.encode_into(ids_view, enc, &len, staging.ws);
  return ConstTensorView(Shape{ts, d_model_}, enc.data());
}

void DecodeSession::prime_compute(const Tensor& src_ids,
                                  index_t src_length,
                                  PrefillStaging& staging) const {
  QDNN_CHECK(src_ids.rank() == 1 ||
                 (src_ids.rank() == 2 && src_ids.dim(0) == 1),
             "DecodeSession: prime src_ids must be [Ts] or [1, Ts], got "
                 << src_ids.shape());
  const index_t ts = src_ids.dim(src_ids.rank() - 1);
  QDNN_CHECK(ts >= 1 && ts <= max_src_,
             "DecodeSession: source length " << ts << " outside [1, "
                                             << max_src_ << "]");
  QDNN_CHECK(src_length >= 0 && src_length <= ts,
             "DecodeSession: src_length " << src_length << " outside [0, "
                                          << ts << "] (0 = all valid)");
  const index_t layers = model_->num_decoder_layers();
  QDNN_CHECK(staging.k.numel() == layers * max_src_ * proj_dim_ &&
                 staging.v.numel() == staging.k.numel(),
             "DecodeSession: staging not sized for this session — call "
             "init_staging first");
  const index_t len = src_length > 0 ? src_length : ts;
  prime_compute_impl(src_ids.data(), ts, len, staging);
}

void DecodeSession::prime_compute_impl(const float* ids, index_t ts,
                                       index_t len,
                                       PrefillStaging& staging) const {
  QDNN_CHECK(staging.page_ids.empty(),
             "DecodeSession: prime_compute on a staging slot still "
             "holding prefix pages — commit or release them first");
  // Capture the source ids: the prefix-cache key commit_row publishes
  // the computed pages under.  Reserved at init_staging, so no alloc.
  staging.tokens.clear();
  for (index_t i = 0; i < ts; ++i)
    staging.tokens.push_back(static_cast<index_t>(ids[i]));
  staging.from_cache = false;

  // Masked native encoder + cross projections, all from staging.ws —
  // stateless kernels over frozen weights, so concurrent calls (each
  // with a private staging) never touch shared mutable state.  The
  // projections stack in the same frame as the encoder activation:
  // encode_source owns the slot's single reset point.
  const ConstTensorView enc_view = encode_source(ids, ts, len, staging);
  const index_t layers = model_->num_decoder_layers();
  for (index_t l = 0; l < layers; ++l) {
    const index_t offset = l * max_src_ * proj_dim_;
    model_->decoder_layer(l).cross_attention().project_kv(
        enc_view, 1, ts,
        TensorView(Shape{1, ts, proj_dim_}, staging.k.data() + offset),
        TensorView(Shape{1, ts, proj_dim_}, staging.v.data() + offset),
        staging.ws);
  }
  staging.ts = ts;
  staging.len = len;
}

void DecodeSession::commit_row(index_t row, PrefillStaging& staging) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  const index_t layers = model_->num_decoder_layers();
  QDNN_CHECK(staging.ts >= 1 && staging.ts <= max_src_ &&
                 staging.len >= 1 && staging.len <= staging.ts,
             "DecodeSession: commit_row on empty staging — run "
             "prime_compute first");
  QDNN_CHECK(staging.k.numel() == layers * max_src_ * proj_dim_ &&
                 staging.v.numel() == staging.k.numel(),
             "DecodeSession: staging sized for a different session");

  // Continuous mode runs at the full max_batch width so every row slot
  // is addressable; rows never primed just ride the batch masked-out.
  // bind_views is heap-free (inline shapes), so the whole commit is too.
  if (bound_n_ != config_.max_batch) bind_views(config_.max_batch);
  commit_row_impl(row, staging);
}

void DecodeSession::commit_row_impl(index_t row, PrefillStaging& staging) {
  release_row_pages_(row);
  const index_t n_pages = cross_pages_for(staging.ts);
  index_t* crow = cross_table_.data() + row * cross_ppr_;

  if (staging.from_cache) {
    // A prefix hit: the slot holds one reference per shared page —
    // ownership transfers to the row's table.  O(pages) bookkeeping; the
    // pages already hold the cold prime's bits, so the row is
    // bit-identical to one that ran the whole prefill.
    QDNN_CHECK(static_cast<index_t>(staging.page_ids.size()) == n_pages,
               "DecodeSession: staged prefix holds "
                   << staging.page_ids.size() << " pages for a "
                   << staging.ts << "-position source (" << n_pages
                   << " expected)");
    for (index_t p = 0; p < n_pages; ++p)
      crow[p] = staging.page_ids[static_cast<std::size_t>(p)];
    staging.page_ids.clear();
    staging.from_cache = false;
  } else {
    // Cold commit: acquire the cross pages (reclaiming cached prefixes
    // under pressure), copy the staged K/V in page-by-page, and publish
    // the pages to the prefix cache under the source-token hash.
    index_t got = 0;
    for (; got < n_pages; ++got) {
      const index_t page = acquire_page_();
      if (page < 0) break;
      crow[got] = page;
    }
    if (got < n_pages) {
      for (index_t p = 0; p < got; ++p) {
        pool_.release(crow[p]);
        crow[p] = KvPagePool::kSentinelPage;
      }
      QDNN_CHECK(false,
                 "DecodeSession: commit_row needs "
                     << n_pages << " pages but the pool has " << got
                     << " even after reclaim — gate admission on "
                        "free_pages() (oversubscribed scheduler)");
    }
    const index_t layers = model_->num_decoder_layers();
    const index_t slice = page_tokens_ * proj_dim_;
    for (index_t p = 0; p < n_pages; ++p) {
      const index_t t0 = p << page_shift_;
      const index_t rows = std::min(page_tokens_, staging.ts - t0);
      const std::size_t bytes =
          static_cast<std::size_t>(rows * proj_dim_) * sizeof(float);
      float* page = pool_.page_data(crow[p]);
      for (index_t l = 0; l < layers; ++l) {
        const index_t src = (l * max_src_ + t0) * proj_dim_;
        std::memcpy(page + (2 * l) * slice, staging.k.data() + src, bytes);
        std::memcpy(page + (2 * l + 1) * slice, staging.v.data() + src,
                    bytes);
      }
    }
    if (prefix_cache_.enabled() &&
        static_cast<index_t>(staging.tokens.size()) == staging.ts) {
      const std::uint64_t h =
          prefix_hash(staging.tokens.data(), staging.ts, staging.len);
      prefix_cache_.publish(h, staging.tokens.data(), staging.ts,
                            staging.len, crow, n_pages, pool_);
    }
  }

  src_lengths_[static_cast<std::size_t>(row)] = staging.len;
  row_steps_[static_cast<std::size_t>(row)] = 0;
  parked_[static_cast<std::size_t>(row)] = 0;
  primed_ = true;
}

bool DecodeSession::try_commit_row_from_cache(index_t row,
                                              const Tensor& src_ids,
                                              index_t src_length) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  QDNN_CHECK(src_ids.rank() == 1 ||
                 (src_ids.rank() == 2 && src_ids.dim(0) == 1),
             "DecodeSession: prime src_ids must be [Ts] or [1, Ts], got "
                 << src_ids.shape());
  if (!prefix_cache_.enabled()) return false;
  const index_t ts = src_ids.dim(src_ids.rank() - 1);
  QDNN_CHECK(ts >= 1 && ts <= max_src_,
             "DecodeSession: source length " << ts << " outside [1, "
                                             << max_src_ << "]");
  QDNN_CHECK(src_length >= 0 && src_length <= ts,
             "DecodeSession: src_length " << src_length << " outside [0, "
                                          << ts << "] (0 = all valid)");
  const index_t len = src_length > 0 ? src_length : ts;

  lookup_tokens_.clear();
  for (index_t i = 0; i < ts; ++i)
    lookup_tokens_.push_back(static_cast<index_t>(src_ids.data()[i]));
  const std::uint64_t h = prefix_hash(lookup_tokens_.data(), ts, len);
  lookup_pages_.clear();
  if (!prefix_cache_.lookup_acquire(h, lookup_tokens_.data(), ts, len,
                                    pool_, lookup_pages_))
    return false;

  if (bound_n_ != config_.max_batch) bind_views(config_.max_batch);
  release_row_pages_(row);
  index_t* crow = cross_table_.data() + row * cross_ppr_;
  for (std::size_t p = 0; p < lookup_pages_.size(); ++p)
    crow[p] = lookup_pages_[p];
  lookup_pages_.clear();
  src_lengths_[static_cast<std::size_t>(row)] = len;
  row_steps_[static_cast<std::size_t>(row)] = 0;
  parked_[static_cast<std::size_t>(row)] = 0;
  primed_ = true;
  return true;
}

bool DecodeSession::prefix_lookup_into(const Tensor& src_ids,
                                       index_t src_length,
                                       PrefillStaging& staging) {
  QDNN_CHECK(src_ids.rank() == 1 ||
                 (src_ids.rank() == 2 && src_ids.dim(0) == 1),
             "DecodeSession: prime src_ids must be [Ts] or [1, Ts], got "
                 << src_ids.shape());
  if (!prefix_cache_.enabled()) return false;
  const index_t ts = src_ids.dim(src_ids.rank() - 1);
  QDNN_CHECK(ts >= 1 && ts <= max_src_,
             "DecodeSession: source length " << ts << " outside [1, "
                                             << max_src_ << "]");
  QDNN_CHECK(src_length >= 0 && src_length <= ts,
             "DecodeSession: src_length " << src_length << " outside [0, "
                                          << ts << "] (0 = all valid)");
  QDNN_CHECK(staging.page_ids.empty(),
             "DecodeSession: prefix_lookup_into on a staging slot still "
             "holding prefix pages — commit or release them first");
  const index_t len = src_length > 0 ? src_length : ts;

  staging.tokens.clear();
  for (index_t i = 0; i < ts; ++i)
    staging.tokens.push_back(static_cast<index_t>(src_ids.data()[i]));
  const std::uint64_t h = prefix_hash(staging.tokens.data(), ts, len);
  if (!prefix_cache_.lookup_acquire(h, staging.tokens.data(), ts, len,
                                    pool_, staging.page_ids))
    return false;
  staging.ts = ts;
  staging.len = len;
  staging.from_cache = true;
  return true;
}

void DecodeSession::release_staged_prefix(PrefillStaging& staging) {
  for (index_t page : staging.page_ids) pool_.release(page);
  staging.page_ids.clear();
  staging.from_cache = false;
}

void DecodeSession::reset_row(index_t row) {
  QDNN_CHECK(row >= 0 && row < config_.max_batch,
             "DecodeSession: row " << row << " outside [0, "
                                   << config_.max_batch << ")");
  // Hand every page back (the prefix cache's own pins keep shared cross
  // pages alive) and pin the row at ring 0 over the sentinel page.
  release_row_pages_(row);
  row_steps_[static_cast<std::size_t>(row)] = 0;
  parked_[static_cast<std::size_t>(row)] = 1;
}

void DecodeSession::run_step(const std::vector<index_t>& tokens) {
  const index_t n = bound_n_;
  // Map a self-KV page for every live row entering a new page-aligned
  // block.  Solo/default pools can never trip this (pool_pages covers
  // every row fully deep); an oversubscribing scheduler must call
  // ensure_row_step_capacity itself (and preempt on false) before
  // stepping.  Skipped while warming: the warm-up runs over the
  // sentinel page.
  if (!warming_) {
    for (index_t r = 0; r < n; ++r) {
      if (parked_[static_cast<std::size_t>(r)]) continue;
      QDNN_CHECK(ensure_row_step_capacity(r),
                 "DecodeSession: page pool exhausted at row "
                     << r << " step "
                     << row_steps_[static_cast<std::size_t>(r)]
                     << " — preempt a row (scheduler) or raise "
                        "pool_pages");
    }
  }
  // Stage profiling piggybacks on the trace gate: two clock reads per
  // stage while tracing, nothing at all (one relaxed load) when off.
  const bool profiling = obs::trace_enabled();
  long long t_prev = profiling ? obs::now_ns() : 0;
  const auto mark = [&](std::size_t slot) {
    const long long t_now = obs::now_ns();
    stage_ns_[slot] += t_now - t_prev;
    ++stage_calls_[slot];
    t_prev = t_now;
  };
  // Embed each row's new token at that row's ring position:
  // y = E[id]·sqrt(d) + PE[row_step], the exact operation order of the
  // training path.  Rows at different positions read different PE rows —
  // the continuous-batching case.
  const Tensor& table = model_->positional().table();
  const float* weights = model_->tgt_embedding().weight().value.data();
  const float scale = std::sqrt(static_cast<float>(d_model_));
  for (index_t r = 0; r < n; ++r) {
    const index_t id = tokens[static_cast<std::size_t>(r)];
    QDNN_CHECK(id >= 0 && id < vocab_,
               "DecodeSession: token id " << id << " out of vocab "
                                          << vocab_);
    const float* pe =
        table.data() + row_steps_[static_cast<std::size_t>(r)] * d_model_;
    const float* e = weights + id * d_model_;
    float* y = embed_buf_.data() + r * d_model_;
    for (index_t d = 0; d < d_model_; ++d) y[d] = e[d] * scale + pe[d];
  }
  if (profiling) mark(0);

  for (std::size_t i = 0; i < stages_.size(); ++i) {
    const nn::PipelineStage& st = stages_[i];
    if (st.is_add()) {
      // Residual-add stage: out = in + addend, the exact operand order of
      // the training path's `main += residual`.
      const float* a = in_views_[i].data();
      const float* b = add_views_[i].data();
      float* o = out_views_[i].data();
      const index_t count = out_views_[i].numel();
      for (index_t j = 0; j < count; ++j) o[j] = a[j] + b[j];
      if (profiling) mark(i + 1);
      continue;
    }
    // Scratch lives only within a stage; rewinding here caps the
    // workspace at the per-stage maximum instead of the pipeline sum.
    ws_.reset();
    st.module->forward_into(in_views_[i], out_views_[i], ws_);
    if (profiling) mark(i + 1);
  }

  // Greedy head: first-maximum argmax, matching greedy_decode_reference.
  next_tokens_.resize(static_cast<std::size_t>(n));
  const float* logits = buffers_.back().data();
  for (index_t r = 0; r < n; ++r) {
    const float* row = logits + r * vocab_;
    index_t best = 0;
    for (index_t v = 1; v < vocab_; ++v)
      if (row[v] > row[best]) best = v;
    next_tokens_[static_cast<std::size_t>(r)] = best;
  }
  if (profiling) mark(stages_.size() + 1);
  // Parked rows stay pinned at ring position 0: they rode the gemm (their
  // output is ignored) but never advance, so an idle row's ring cannot
  // exhaust no matter how many ticks pass.
  for (index_t r = 0; r < n; ++r)
    if (!parked_[static_cast<std::size_t>(r)])
      ++row_steps_[static_cast<std::size_t>(r)];
}

std::vector<obs::StageTiming> DecodeSession::stage_profile() const {
  std::vector<obs::StageTiming> out;
  out.reserve(stage_ns_.size());
  for (std::size_t i = 0; i < stage_ns_.size(); ++i) {
    obs::StageTiming t;
    if (i == 0) {
      t.name = "embed";
    } else if (i == stage_ns_.size() - 1) {
      t.name = "argmax";
    } else {
      const nn::PipelineStage& st = stages_[i - 1];
      t.name = st.is_add() ? "residual_add" : st.module->name();
    }
    t.calls = stage_calls_[i];
    t.total_ns = stage_ns_[i];
    out.push_back(std::move(t));
  }
  return out;
}

const std::vector<index_t>& DecodeSession::step(
    const std::vector<index_t>& tokens) {
  QDNN_CHECK(primed_, "DecodeSession: step() before prime()");
  for (index_t r = 0; r < bound_n_; ++r)
    QDNN_CHECK(row_steps_[static_cast<std::size_t>(r)] < config_.max_steps,
               "DecodeSession: row " << r << " ring exhausted after "
                                     << config_.max_steps
                                     << " steps — prime or reset the row");
  QDNN_CHECK(static_cast<index_t>(tokens.size()) == bound_n_,
             "DecodeSession: " << tokens.size() << " tokens for batch "
                               << bound_n_);
  run_step(tokens);
  return next_tokens_;
}

index_t DecodeSession::steps_taken() const {
  index_t deepest = 0;
  for (index_t r = 0; r < bound_n_; ++r)
    deepest =
        std::max(deepest, row_steps_[static_cast<std::size_t>(r)]);
  return deepest;
}

std::vector<std::vector<index_t>> DecodeSession::generate(index_t bos,
                                                          index_t eos) {
  QDNN_CHECK(primed_, "DecodeSession: generate() before prime()");
  QDNN_CHECK(steps_taken() == 0,
             "DecodeSession: generate() needs a fresh prime()");
  const index_t n = bound_n_;
  std::vector<std::vector<index_t>> outputs(static_cast<std::size_t>(n));
  feed_tokens_.assign(static_cast<std::size_t>(n), bos);
  done_.assign(static_cast<std::size_t>(n), 0);

  for (index_t s = 0; s < config_.max_steps; ++s) {
    step(feed_tokens_);
    bool any_active = false;
    for (index_t r = 0; r < n; ++r) {
      const auto ri = static_cast<std::size_t>(r);
      if (done_[ri]) {
        // Finished rows keep riding the batch (their cache rows are
        // computed but ignored), fed eos like the reference's pad slot.
        feed_tokens_[ri] = eos;
        continue;
      }
      const index_t best = next_tokens_[ri];
      feed_tokens_[ri] = best;
      if (best == eos) {
        done_[ri] = 1;
      } else {
        outputs[ri].push_back(best);
        any_active = true;
      }
    }
    if (!any_active) break;
  }
  return outputs;
}

}  // namespace qdnn::runtime
