// PackedWeights: a constant GEMM operand materialized once, at freeze
// time, in the exact layout the selected gemm backend streams.
//
// The serving hot path of every dense layer is C = A · op(B) where B is a
// constant weight matrix.  gemm() handles transposed operands by packing
// them into scratch *per call* — O(k·n) copy work and k·n floats of
// workspace on every request.  A PackedWeights performs that pack exactly
// once (Module::freeze), after which gemm_prepacked() consumes the cached
// block directly: zero per-request packing, bit-identical results, and a
// smaller workspace watermark (asserted by tests/runtime/session_test.cpp
// and tests/linalg/gemm_prepacked_test.cpp).
//
// The layout tracks the backend active at pack time:
//   * generic — plain row-major [k, n] (the layout the blocked scalar
//     kernel streams), exactly as the per-call pack would produce;
//   * SIMD (avx2/neon) — tile-panel: ceil(n/16) panels of k x 16 floats,
//     tail panel zero-padded, so each microkernel step reads one
//     contiguous 16-float panel row with zero per-call repacking.
// Each pack carries the backend that laid it out; gemm_prepacked
// dispatches on that tag, so a pack made under one backend stays
// consumable even if the active backend is later overridden (re-freeze
// migrates packs to the new layout).
#pragma once

#include <vector>

#include "core/tensor.h"
#include "linalg/gemm_backend.h"

namespace qdnn::linalg {

enum class PackLayout { kRowMajor, kTilePanel };

class PackedWeights {
 public:
  PackedWeights() = default;

  // Materializes op(src) in the active backend's layout:
  //   trans == false: src is [k, n] with leading dimension `ld` (>= n);
  //   trans == true:  src is [n, k] with leading dimension `ld` (>= k),
  //                   and the pack holds its transpose.
  // Re-packing an already-packed object replaces the previous pack (the
  // freeze-after-weight-update path) and re-reads the active backend.
  void pack(bool trans, index_t k, index_t n, const float* src, index_t ld);

  // Drops the pack and returns the object to the empty state (unfreeze).
  void clear();

  bool packed() const { return packed_; }
  // op(B) dimensions: rows() = k (reduction), cols() = n (output).
  index_t rows() const { return k_; }
  index_t cols() const { return n_; }
  PackLayout layout() const { return layout_; }
  // The backend whose kernel streams this pack's layout.
  GemmBackend backend() const { return backend_; }
  // The packed block.  kRowMajor: row-major [k, n] with leading
  // dimension n.  kTilePanel: ceil(n/16) panels of k*16 floats each
  // (element (p, j) of panel jp at data()[jp*k*16 + p*16 + j]); either
  // way data()[0] is op(B)(0, 0).
  const float* data() const { return data_.data(); }
  index_t size_floats() const { return static_cast<index_t>(data_.size()); }

 private:
  index_t k_ = 0, n_ = 0;
  bool packed_ = false;
  PackLayout layout_ = PackLayout::kRowMajor;
  GemmBackend backend_ = GemmBackend::kGeneric;
  std::vector<float> data_;
};

// C(m,n) = alpha * op(A) * B + beta * C, where `b` holds op(B) packed by
// PackedWeights::pack.  Bit-identical to the corresponding
// gemm(trans_a, trans_b, ...) call on the source operand whenever the
// active backend matches the pack's: the kernel consumes the same
// operand values in the same per-row FMA order, packed at freeze time
// instead of per call.  `scratch` is needed only when trans_a
// (gemm_scratch_floats(trans_a, false, m, n, k) floats); pass nullptr
// otherwise.
void gemm_prepacked(bool trans_a, index_t m, index_t n, index_t k,
                    float alpha, const float* a, index_t lda,
                    const PackedWeights& b, float beta, float* c,
                    index_t ldc, float* scratch = nullptr);

}  // namespace qdnn::linalg
