#include "serve/scheduler.h"

#include <algorithm>

namespace qdnn::serve {

BatchScheduler::BatchScheduler(models::Transformer& model,
                               BatchSchedulerConfig config)
    : config_(config),
      vocab_(model.config().tgt_vocab),
      session_(model, config.session) {
  QDNN_CHECK(config_.bos >= 0 && config_.bos < vocab_,
             "BatchScheduler: bos " << config_.bos << " outside vocab "
                                    << vocab_);
  QDNN_CHECK(config_.eos >= 0 && config_.eos < vocab_,
             "BatchScheduler: eos " << config_.eos << " outside vocab "
                                    << vocab_);
  QDNN_CHECK(config_.prefill_workers >= 0,
             "BatchScheduler: prefill_workers must be non-negative, got "
                 << config_.prefill_workers);
  QDNN_CHECK(config_.prefill_slots >= 0,
             "BatchScheduler: prefill_slots must be non-negative (0 = "
             "max_batch), got "
                 << config_.prefill_slots);

  const index_t rows = session_.max_batch();
  slots_.resize(static_cast<std::size_t>(rows));
  feed_.assign(static_cast<std::size_t>(rows), config_.bos);
  // Stack of free rows, highest first, so back() hands out row 0 first.
  // Rows start parked at ring position 0 (the session parks every row at
  // bind), so free rows need no per-tick maintenance.
  free_rows_.reserve(static_cast<std::size_t>(rows));
  for (index_t r = rows - 1; r >= 0; --r) free_rows_.push_back(r);
  completed_.reserve(static_cast<std::size_t>(rows));
  prob_scratch_ = Tensor{Shape{vocab_}};
  idx_scratch_.resize(static_cast<std::size_t>(vocab_));

  if (config_.prefill_workers > 0) {
    const index_t slots = config_.prefill_slots > 0
                              ? config_.prefill_slots
                              : rows;
    prefill_ = std::make_unique<PrefillPool>(
        session_, config_.prefill_workers, slots);
  }
}

index_t BatchScheduler::submit(Request request) {
  QDNN_CHECK(request.src_ids.rank() == 1 ||
                 (request.src_ids.rank() == 2 &&
                  request.src_ids.dim(0) == 1),
             "BatchScheduler: src_ids must be [Ts] or [1, Ts], got "
                 << request.src_ids.shape());
  const index_t ts = request.src_ids.dim(request.src_ids.rank() - 1);
  QDNN_CHECK(ts >= 1 && ts <= session_.max_src(),
             "BatchScheduler: source length " << ts << " outside [1, "
                                              << session_.max_src()
                                              << "] (max_src)");
  QDNN_CHECK(request.src_length >= 0 && request.src_length <= ts,
             "BatchScheduler: src_length " << request.src_length
                                           << " outside [0, " << ts
                                           << "] (0 = all valid)");
  QDNN_CHECK(request.max_new_tokens >= 0 &&
                 request.max_new_tokens <= session_.max_steps(),
             "BatchScheduler: max_new_tokens "
                 << request.max_new_tokens << " outside [0, "
                 << session_.max_steps() << "] (max_steps)");
  validate(request.sampling, vocab_);

  PrefillJob job;
  job.id = next_id_++;
  job.submit_tick = ticks_;
  // The request's warm token buffer travels with it: reserved here (the
  // submit edge allocates by contract), swapped into the batch slot at
  // admission and handed off inside the RequestResult at retirement — so
  // the admit and retire ticks themselves never heap-allocate.
  job.budget = request.max_new_tokens > 0 ? request.max_new_tokens
                                          : session_.max_steps();
  job.tokens.reserve(static_cast<std::size_t>(job.budget));
  job.request = std::move(request);
  const index_t id = job.id;
  if (prefill_)
    prefill_->submit(std::move(job));
  else
    queue_.push_back(std::move(job));
  return id;
}

void BatchScheduler::install(index_t row, PrefillJob&& job) {
  Slot& slot = slots_[static_cast<std::size_t>(row)];
  slot.live = true;
  slot.id = job.id;
  slot.budget = job.budget;  // resolved at submit, matches the reserve
  slot.sampling = job.request.sampling;
  slot.rng.reseed(job.request.sampling.seed);
  slot.tokens = std::move(job.tokens);  // warm, empty, reserved at submit
  slot.submit_tick = job.submit_tick;
  slot.admit_tick = ticks_;
  feed_[static_cast<std::size_t>(row)] = config_.bos;
  ++live_rows_;
}

void BatchScheduler::admit_sync() {
  // Synchronous admission runs the prefill on the serving thread:
  // prime_row = prime_compute + commit_row, the same code path the async
  // pool splits across threads.
  while (!queue_.empty() && !free_rows_.empty()) {
    const index_t row = free_rows_.back();
    PrefillJob job = std::move(queue_.front());
    queue_.pop_front();
    try {
      session_.prime_row(row, job.request.src_ids, job.request.src_length);
    } catch (...) {
      // A prefill failure that slipped past submit (e.g. a source id
      // outside the encoder vocabulary) resolves exactly like the async
      // path: a kError result, never a dropped id.  prime_row throws
      // before any session mutation, and the row was only peeked — not
      // popped — so no batch capacity leaks either.
      resolve_failed(std::move(job), std::current_exception());
      continue;
    }
    free_rows_.pop_back();
    install(row, std::move(job));
  }
}

void BatchScheduler::resolve_failed(PrefillJob&& job,
                                    std::exception_ptr error) {
  // A prefill failure must still resolve the submitted id: emit a kError
  // result instead of dropping the request on the floor.  No batch row
  // is consumed.  Allocates (the message) — error path.
  RequestResult failed;
  failed.id = job.id;
  failed.tokens = std::move(job.tokens);  // empty
  failed.reason = FinishReason::kError;
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    failed.error = e.what();
  } catch (...) {
    failed.error = "unknown prefill error";
  }
  failed.submit_tick = job.submit_tick;
  failed.admit_tick = ticks_;
  failed.finish_tick = ticks_;
  completed_.push_back(std::move(failed));
}

void BatchScheduler::admit_async() {
  PrefillPool::Finished fin;
  // Errored prefills resolve unconditionally — they need no batch row,
  // so they must not queue behind the free-row gate below (a fully live
  // batch would otherwise hold the error result AND its staging slot
  // hostage for up to max_steps ticks).
  while (prefill_->try_take_error(fin)) {
    prefill_->release(fin.slot);  // a failed job must never hold a slot
    resolve_failed(std::move(fin.job), fin.error);
  }

  // Drain successful prefills into free rows: each admission is one
  // commit_row K/V copy plus slot bookkeeping — no heap allocation, no
  // waiting (a prefill still computing is simply not ready this tick).
  while (!free_rows_.empty() && prefill_->try_take(fin)) {
    if (fin.error) {  // finished after the sweep above — same path
      prefill_->release(fin.slot);
      resolve_failed(std::move(fin.job), fin.error);
      continue;
    }
    const index_t row = free_rows_.back();
    free_rows_.pop_back();
    session_.commit_row(row, prefill_->staging(fin.slot));
    prefill_->release(fin.slot);
    install(row, std::move(fin.job));
  }
}

void BatchScheduler::retire(index_t row, FinishReason reason) {
  Slot& slot = slots_[static_cast<std::size_t>(row)];
  RequestResult result;
  result.id = slot.id;
  // Hand the slot's buffer off inside the result; the slot's next warm
  // buffer arrives with the next admitted request (see submit), so no
  // fresh vector is created here and the retire→admit cycle stays
  // allocation-free.
  result.tokens = std::move(slot.tokens);
  result.reason = reason;
  result.decode_steps = session_.row_steps(row);
  result.submit_tick = slot.submit_tick;
  result.admit_tick = slot.admit_tick;
  result.finish_tick = ticks_;
  completed_.push_back(std::move(result));

  slot.live = false;
  slot.id = -1;
  // Park exactly once: the freed row rides the batch gemm pinned at ring
  // position 0 (output ignored) until its next admission — no per-tick
  // reset needed, and its ring can never exhaust.
  session_.reset_row(row);
  feed_[static_cast<std::size_t>(row)] = config_.bos;
  free_rows_.push_back(row);
  --live_rows_;
}

index_t BatchScheduler::step() {
  // Admission first, so a row freed on the previous tick never idles: a
  // retirement's slot is serving the next queued request one tick later.
  if (prefill_)
    admit_async();
  else
    admit_sync();

  if (live_rows_ == 0) {
    ++ticks_;  // idle tick: time passes for arrival traces
    return 0;
  }

  const index_t stepped = live_rows_;
  const std::vector<index_t>& greedy = session_.step(feed_);
  const ConstTensorView& logits = session_.logits();
  ++ticks_;
  ++stepped_ticks_;
  occupancy_sum_ += stepped;

  for (index_t row = 0;
       row < static_cast<index_t>(slots_.size()); ++row) {
    Slot& slot = slots_[static_cast<std::size_t>(row)];
    if (!slot.live) continue;
    // Greedy rides the session's built-in argmax (identical first-max
    // tie-breaking); stochastic heads sample from the row's logits with
    // the request's own stream.
    const index_t token =
        slot.sampling.kind == SamplingConfig::Kind::kGreedy
            ? greedy[static_cast<std::size_t>(row)]
            : sample_token(slot.sampling, logits.data() + row * vocab_,
                           vocab_, slot.rng, prob_scratch_.data(),
                           idx_scratch_.data());
    if (token == config_.eos) {
      retire(row, FinishReason::kEos);
      continue;
    }
    slot.tokens.push_back(token);
    ++total_tokens_;
    feed_[static_cast<std::size_t>(row)] = token;
    if (static_cast<index_t>(slot.tokens.size()) >= slot.budget)
      retire(row, FinishReason::kLength);
  }
  return stepped;
}

bool BatchScheduler::wait_for_prefill() const {
  if (!prefill_ || live_rows_ > 0 || !queue_.empty() ||
      prefill_->pending() == 0 || prefill_->ready() > 0)
    return false;
  prefill_->wait_ready();
  return true;
}

void BatchScheduler::run() {
  while (!idle()) {
    if (wait_for_prefill()) continue;
    step();
  }
}

std::vector<RequestResult> BatchScheduler::take_results() {
  std::vector<RequestResult> out = std::move(completed_);
  completed_ = std::vector<RequestResult>();
  // Re-reserve off the tick path, so the next retires stay warm (the
  // reserve only covers max_batch retirements per drain; run() without
  // draining grows the buffer, which is allowed — retirement hands
  // results off, the tick contract is on the slot cycle).
  completed_.reserve(slots_.size());
  return out;
}

double BatchScheduler::mean_occupancy() const {
  return stepped_ticks_ == 0
             ? 0.0
             : static_cast<double>(occupancy_sum_) /
                   static_cast<double>(stepped_ticks_);
}

}  // namespace qdnn::serve
