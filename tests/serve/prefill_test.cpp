// Prefill/decode-split contracts: asynchronous admission (PrefillPool
// workers computing the encoder pass off the serving thread) must be
// bit-identical per request to the synchronous scheduler — and therefore
// to solo decodes — for fuzzed arrival traces; pool lifecycle (pending/
// ready/slots, worker-error propagation) behaves as documented.
#include "serve/prefill.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "decode_test_util.h"
#include "obs/trace.h"
#include "serve/scheduler.h"

namespace qdnn::serve {
namespace {

using models::Transformer;
using qdnn::testing::random_src_ids;
using qdnn::testing::tiny_transformer_config;

constexpr index_t kBos = 1, kEos = 2;

BatchSchedulerConfig scheduler_config(index_t max_batch, index_t max_steps,
                                      index_t prefill_workers) {
  BatchSchedulerConfig config;
  config.session.max_batch = max_batch;
  config.session.max_steps = max_steps;
  config.bos = kBos;
  config.eos = kEos;
  config.prefill_workers = prefill_workers;
  return config;
}

struct TestRequest {
  Tensor src;
  index_t src_length;
  index_t budget;
  SamplingConfig sampling = SamplingConfig::greedy();
  std::vector<index_t> reference;  // solo greedy tokens (greedy requests)
};

std::vector<TestRequest> make_requests(Transformer& model, index_t count,
                                       index_t max_steps,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TestRequest> requests;
  for (index_t i = 0; i < count; ++i) {
    TestRequest r;
    const index_t ts = 3 + rng.uniform_int(4);     // 3..6
    const index_t len = 1 + rng.uniform_int(ts);   // 1..ts (ragged)
    r.src = random_src_ids(1, ts, 20, seed * 100 + i);
    r.src_length = len;
    r.budget = 2 + rng.uniform_int(max_steps - 2);
    r.reference = model.greedy_decode_reference(r.src, {len}, kBos, kEos,
                                                r.budget)[0];
    requests.push_back(std::move(r));
  }
  return requests;
}

// Drives one scheduler (sync or async) over an arrival trace; returns
// results keyed by request index.
std::map<index_t, RequestResult> drive(
    Transformer& model, const std::vector<TestRequest>& requests,
    const std::vector<index_t>& order,
    const std::vector<index_t>& arrival_ticks, index_t max_batch,
    index_t max_steps, index_t prefill_workers) {
  BatchScheduler scheduler(
      model, scheduler_config(max_batch, max_steps, prefill_workers));
  std::map<index_t, index_t> id_to_index;
  std::map<index_t, RequestResult> results;
  std::size_t next = 0;
  while (next < order.size() || !scheduler.idle()) {
    while (next < order.size() &&
           arrival_ticks[next] <= scheduler.ticks()) {
      const index_t idx = order[next];
      const TestRequest& r = requests[static_cast<std::size_t>(idx)];
      Request req;
      req.src_ids = r.src;
      req.src_length = r.src_length;
      req.max_new_tokens = r.budget;
      req.sampling = r.sampling;
      id_to_index[scheduler.submit(std::move(req))] = idx;
      ++next;
    }
    // Async: block for an in-flight prefill instead of free-running idle
    // ticks (which would collapse the arrival schedule).
    if (scheduler.wait_for_prefill()) continue;
    scheduler.step();
    for (RequestResult& result : scheduler.take_results())
      results[id_to_index.at(result.id)] = std::move(result);
  }
  return results;
}

TEST(PrefillPool, AsyncAdmissionBitIdenticalToSyncForFuzzedTraces) {
  // The headline split contract: for fuzzed submission orders, arrival
  // delays, batch widths and worker counts, every request's async-served
  // token sequence equals the synchronous scheduler's AND the solo
  // reference, token for token.  Only admission *timing* may differ.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 12;
  const auto requests = make_requests(model, 8, max_steps, 21);

  for (const std::uint64_t fuzz_seed : {11u, 22u, 33u}) {
    Rng rng(fuzz_seed);
    const index_t max_batch = 1 + rng.uniform_int(3);        // 1..3
    const index_t workers = 1 + rng.uniform_int(2);          // 1..2
    std::vector<index_t> order =
        rng.permutation(static_cast<index_t>(requests.size()));
    std::vector<index_t> arrivals;
    index_t tick = 0;
    for (std::size_t i = 0; i < order.size(); ++i) {
      arrivals.push_back(tick);
      tick += rng.uniform_int(4);  // 0..3 ticks between arrivals
    }

    const auto sync = drive(model, requests, order, arrivals, max_batch,
                            max_steps, /*prefill_workers=*/0);
    const auto async = drive(model, requests, order, arrivals, max_batch,
                             max_steps, workers);
    ASSERT_EQ(sync.size(), requests.size()) << "fuzz seed " << fuzz_seed;
    ASSERT_EQ(async.size(), requests.size()) << "fuzz seed " << fuzz_seed;
    for (const auto& [idx, result] : async) {
      const TestRequest& r = requests[static_cast<std::size_t>(idx)];
      EXPECT_EQ(result.tokens, r.reference)
          << "request " << idx << " diverged from solo (fuzz seed "
          << fuzz_seed << ", workers " << workers << ")";
      EXPECT_EQ(result.tokens, sync.at(idx).tokens)
          << "request " << idx << " diverged from sync (fuzz seed "
          << fuzz_seed << ")";
      EXPECT_EQ(result.reason == FinishReason::kEos,
                sync.at(idx).reason == FinishReason::kEos)
          << "request " << idx;
    }
  }
}

TEST(PrefillPool, ConcurrentPrimeComputeBitIdenticalToSequential) {
  // The lock-free contract head on: N threads hammering prime_compute on
  // ONE session — each with a private warmed staging slot, claiming
  // ragged sources off a shared counter — must stage exactly the bytes a
  // sequential pass stages, and the committed rows must decode exactly
  // the solo reference streams.  Any shared mutable state in the encoder
  // path (the old per-module training caches) shows up here as a flaky
  // byte diff; under TSan (CI) it shows up as a reported race.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  runtime::DecodeSessionConfig sc;
  sc.max_batch = 2;
  sc.max_steps = 6;
  runtime::DecodeSession session(model, sc);

  constexpr index_t kThreads = 4;
  constexpr index_t kRequests = 12;
  struct Source {
    Tensor ids;
    index_t ts, len;
    std::vector<index_t> reference;
  };
  Rng rng(91);
  std::vector<Source> sources;
  for (index_t i = 0; i < kRequests; ++i) {
    Source s;
    s.ts = 3 + rng.uniform_int(4);     // 3..6
    s.len = 1 + rng.uniform_int(s.ts); // 1..ts (ragged)
    s.ids = random_src_ids(1, s.ts, 20, 400 + static_cast<std::uint64_t>(i));
    s.reference = model.greedy_decode_reference(s.ids, {s.len}, kBos, kEos,
                                                sc.max_steps)[0];
    // Untrained tiny model: no eos inside the budget, so generate() below
    // emits exactly max_steps tokens to compare against.
    EXPECT_EQ(s.reference.size(), static_cast<std::size_t>(sc.max_steps));
    sources.push_back(std::move(s));
  }

  // Only the first ts rows of each layer's staged slice are meaningful
  // (the tail holds whatever the warm-up left behind).
  const index_t layers = model.config().n_layers;
  const index_t proj = model.config().proj_dim;
  const index_t max_src = session.max_src();
  const auto valid_bytes = [&](const runtime::PrefillStaging& st,
                               index_t ts) {
    std::vector<float> out;
    for (index_t l = 0; l < layers; ++l) {
      const index_t off = l * max_src * proj;
      out.insert(out.end(), st.k.data() + off, st.k.data() + off + ts * proj);
      out.insert(out.end(), st.v.data() + off, st.v.data() + off + ts * proj);
    }
    return out;
  };

  runtime::PrefillStaging seq;
  session.init_staging(seq);
  std::vector<std::vector<float>> baseline;
  for (const Source& s : sources) {
    session.prime_compute(s.ids, s.len, seq);
    baseline.push_back(valid_bytes(seq, s.ts));
  }

  std::atomic<index_t> next{0};
  std::atomic<index_t> first_mismatch{-1};
  std::vector<std::thread> threads;
  for (index_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      runtime::PrefillStaging mine;
      session.init_staging(mine);
      for (;;) {
        const index_t i = next.fetch_add(1);
        if (i >= kRequests) break;
        const Source& s = sources[static_cast<std::size_t>(i)];
        session.prime_compute(s.ids, s.len, mine);
        if (valid_bytes(mine, s.ts) != baseline[static_cast<std::size_t>(i)]) {
          index_t expected = -1;
          first_mismatch.compare_exchange_strong(expected, i);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(first_mismatch.load(), -1)
      << "concurrent prime_compute staged different bytes than sequential "
         "for request "
      << first_mismatch.load();

  // The staged results commit and decode bit-identically to the solo
  // references, two rows at a time.
  for (index_t i = 0; i + 1 < kRequests; i += 2) {
    for (index_t r = 0; r < 2; ++r) {
      const Source& s = sources[static_cast<std::size_t>(i + r)];
      session.prime_compute(s.ids, s.len, seq);
      session.commit_row(r, seq);
    }
    const auto streams = session.generate(kBos, kEos);
    for (index_t r = 0; r < 2; ++r)
      EXPECT_EQ(streams[static_cast<std::size_t>(r)],
                sources[static_cast<std::size_t>(i + r)].reference)
          << "committed row " << r << " of pair " << i
          << " diverged from its solo decode";
  }
}

TEST(PrefillPool, StochasticRequestsReproducibleAcrossAdmissionModes) {
  // Per-request seeded streams must make stochastic outputs independent
  // of admission mode too, not just admission order.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  const index_t max_steps = 10;
  auto requests = make_requests(model, 5, max_steps, 31);
  for (std::size_t i = 0; i < requests.size(); ++i)
    requests[i].sampling =
        i % 2 == 0 ? SamplingConfig::with_temperature(
                         1.3f, 500 + static_cast<std::uint64_t>(i))
                   : SamplingConfig::with_top_k(
                         3, 0.8f, 900 + static_cast<std::uint64_t>(i));

  const auto n = static_cast<index_t>(requests.size());
  std::vector<index_t> order(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  const std::vector<index_t> no_delay(static_cast<std::size_t>(n), 0);

  const auto sync =
      drive(model, requests, order, no_delay, 2, max_steps, 0);
  const auto async =
      drive(model, requests, order, no_delay, 2, max_steps, 2);
  ASSERT_EQ(sync.size(), requests.size());
  for (const auto& [idx, result] : sync)
    EXPECT_EQ(result.tokens, async.at(idx).tokens)
        << "request " << idx << ": admission mode changed the sample";
}

TEST(PrefillPool, ComputesOffThreadIntoSlotsAndReportsPending) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  runtime::DecodeSessionConfig sc;
  sc.max_batch = 2;
  sc.max_steps = 8;
  runtime::DecodeSession session(model, sc);
  PrefillPool pool(session, /*workers=*/1, /*slots=*/2);
  EXPECT_EQ(pool.workers(), 1);
  EXPECT_EQ(pool.slots(), 2);
  EXPECT_EQ(pool.pending(), 0);

  const Tensor src = random_src_ids(1, 4, 20, 71);
  const auto ref = model.greedy_decode_reference(src, {}, kBos, kEos, 6)[0];
  // Untrained tiny model: the reference never hits eos inside the budget.
  ASSERT_EQ(ref.size(), 6u);

  PrefillJob job;
  job.id = 0;
  job.request.src_ids = src;
  pool.submit(std::move(job));
  // pending() counts until the serving side takes the job.
  EXPECT_GE(pool.pending(), 1);
  PrefillPool::Finished fin;
  while (!pool.try_take(fin)) std::this_thread::yield();
  EXPECT_EQ(fin.job.id, 0);
  EXPECT_EQ(pool.pending(), 0);

  // The staged K/V commit into a row and decode exactly the solo stream.
  session.commit_row(0, pool.staging_mut(fin.slot));
  pool.release(fin.slot);
  std::vector<index_t> feed{kBos, kBos};
  std::vector<index_t> got;
  for (index_t s = 0; s < 6; ++s) {
    feed = session.step(feed);
    got.push_back(feed[0]);
    feed[1] = kBos;  // row 1 parked
  }
  EXPECT_EQ(got, ref);
}

TEST(PrefillPool, WorkerErrorsArriveWithTheJobIntact) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  runtime::DecodeSessionConfig sc;
  sc.max_batch = 1;
  sc.max_steps = 4;
  sc.max_src = 4;
  runtime::DecodeSession session(model, sc);
  PrefillPool pool(session, 1, 1);

  PrefillJob bad;
  bad.id = 7;
  bad.request.src_ids = random_src_ids(1, 6, 20, 73);  // > max_src
  pool.submit(std::move(bad));
  PrefillPool::Finished fin;
  while (!pool.try_take(fin)) std::this_thread::yield();
  // try_take never throws: the failure travels in `error` with the job
  // (and its id) preserved, so the caller can resolve the request.
  EXPECT_EQ(fin.job.id, 7);
  ASSERT_TRUE(fin.error != nullptr);
  try {
    std::rethrow_exception(fin.error);
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("source length"),
              std::string::npos)
        << e.what();
  }
  pool.release(fin.slot);

  // The slot cycles back: the pool still serves after a failure.
  PrefillJob good;
  good.id = 8;
  good.request.src_ids = random_src_ids(1, 3, 20, 74);
  pool.submit(std::move(good));
  while (!pool.try_take(fin)) std::this_thread::yield();
  EXPECT_EQ(fin.job.id, 8);
  EXPECT_TRUE(fin.error == nullptr);
  pool.release(fin.slot);

  EXPECT_THROW(PrefillPool(session, 0, 1), std::runtime_error);
  EXPECT_THROW(PrefillPool(session, 1, 0), std::runtime_error);
}

TEST(BatchScheduler, FailedPrefillResolvesAsErrorResult) {
  // A worker-side prefill failure must still resolve its request id: the
  // scheduler emits a kError result (empty tokens, message set) and
  // keeps serving — no dropped ids, no hung run().  submit() validates
  // at the edge, so a failing job is injected straight into the
  // scheduler's pool to simulate an internal worker error alongside
  // normal traffic.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8, 1));

  auto* pool = const_cast<PrefillPool*>(scheduler.prefill_pool());
  PrefillJob bad;
  bad.id = 998;  // an id the scheduler never handed out
  bad.request.src_ids = random_src_ids(1, 20, 20, 75);  // > max_src
  pool->submit(std::move(bad));

  Request fine;
  fine.src_ids = random_src_ids(1, 4, 20, 76);
  fine.max_new_tokens = 2;
  const index_t good_id = scheduler.submit(std::move(fine));
  scheduler.run();

  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 2u);
  bool saw_error = false, saw_good = false;
  for (const RequestResult& r : results) {
    if (r.id == 998) {
      saw_error = true;
      EXPECT_EQ(r.reason, FinishReason::kError);
      EXPECT_TRUE(r.tokens.empty());
      EXPECT_NE(r.error.find("source length"), std::string::npos)
          << r.error;
    }
    if (r.id == good_id) {
      saw_good = true;
      EXPECT_EQ(r.reason, FinishReason::kLength);
      EXPECT_EQ(r.tokens.size(), 2u);
      EXPECT_TRUE(r.error.empty());
    }
  }
  EXPECT_TRUE(saw_error);
  EXPECT_TRUE(saw_good);
}

TEST(BatchScheduler, AsyncSchedulerReportsPoolAndRetiresEverything) {
  // End-to-end async smoke with more requests than rows: queued()
  // tracks the pool, idle() only clears once every prefill drained, and
  // run() completes the whole trace.
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8, 1));
  ASSERT_NE(scheduler.prefill_pool(), nullptr);
  EXPECT_EQ(scheduler.prefill_pool()->workers(), 1);

  std::vector<index_t> ids;
  for (index_t i = 0; i < 5; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 3 + i % 3, 20, 160 + i);
    req.max_new_tokens = 2 + i % 4;
    ids.push_back(scheduler.submit(std::move(req)));
  }
  EXPECT_FALSE(scheduler.idle());
  scheduler.run();
  EXPECT_TRUE(scheduler.idle());
  EXPECT_EQ(scheduler.queued(), 0);
  auto results = scheduler.take_results();
  ASSERT_EQ(results.size(), 5u);
  for (const RequestResult& r : results) {
    EXPECT_GE(r.admit_tick, r.submit_tick);
    EXPECT_EQ(r.finish_tick - r.admit_tick, r.decode_steps);
  }
}

TEST(BatchScheduler, OutOfVocabSourceResolvesAsErrorAndLeaksNoRow) {
  // submit() validates shape/length/budget/sampling but not token
  // values, so a source id outside the encoder vocabulary only fails in
  // the prefill itself.  BOTH admission modes must resolve it as a
  // kError result — never a thrown-away id or, worse, a leaked batch
  // row (with max_batch == 1, a leaked row would wedge the scheduler
  // for good).
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  for (const index_t workers : {0, 1}) {
    BatchScheduler scheduler(model, scheduler_config(1, 8, workers));

    Request bad;
    bad.src_ids = Tensor{Shape{1, 4}};
    for (index_t j = 0; j < 4; ++j)
      bad.src_ids[j] = 100.0f;  // >= src_vocab (20)
    const index_t bad_id = scheduler.submit(std::move(bad));
    scheduler.run();
    auto failed = scheduler.take_results();
    ASSERT_EQ(failed.size(), 1u) << "workers " << workers;
    EXPECT_EQ(failed[0].id, bad_id);
    EXPECT_EQ(failed[0].reason, FinishReason::kError);
    EXPECT_TRUE(failed[0].tokens.empty());
    EXPECT_FALSE(failed[0].error.empty());

    // The single row survived: normal traffic still serves.
    Request good;
    good.src_ids = random_src_ids(1, 4, 20, 88);
    good.max_new_tokens = 2;
    const index_t good_id = scheduler.submit(std::move(good));
    scheduler.run();
    auto ok = scheduler.take_results();
    ASSERT_EQ(ok.size(), 1u) << "workers " << workers;
    EXPECT_EQ(ok[0].id, good_id);
    EXPECT_EQ(ok[0].tokens.size(), 2u);
  }
}

TEST(BatchScheduler, SyncModeHasNoPool) {
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8, 0));
  EXPECT_EQ(scheduler.prefill_pool(), nullptr);
}

TEST(PrefillPool, ConcurrentPrefixLookupsFromWorkersAreBitIdentical) {
  // The prefix cache under concurrency (the TSan target): several pool
  // workers probe prefix_lookup_into for the SAME handful of sources
  // while the serving thread commits rows and PUBLISHES those sources —
  // lookup pins, publish pins and LRU eviction all interleave, with
  // tracing live so the workers' sampled trace records interleave too.
  // Every request must still decode bit-identically to its solo
  // reference, and repeated sources must actually hit the cache.
  const bool trace_was = obs::trace_enabled();
  obs::set_trace_enabled(true);
  const index_t max_steps = 8;
  Transformer model(tiny_transformer_config());
  model.set_training(false);

  struct Source {
    Tensor src;
    index_t len;
    std::vector<index_t> reference;
  };
  std::vector<Source> sources;
  for (index_t s = 0; s < 3; ++s) {
    Source src;
    src.src = random_src_ids(1, 4 + s, 20, 700 + s);
    src.len = 3 + s;
    src.reference = model.greedy_decode_reference(
        src.src, {src.len}, kBos, kEos, max_steps)[0];
    sources.push_back(std::move(src));
  }

  BatchScheduler scheduler(model,
                           scheduler_config(/*max_batch=*/3, max_steps,
                                            /*prefill_workers=*/3));
  std::map<index_t, index_t> id_to_source;
  for (index_t i = 0; i < 12; ++i) {
    const Source& s = sources[static_cast<std::size_t>(i % 3)];
    Request req;
    req.src_ids = s.src;
    req.src_length = s.len;
    req.max_new_tokens = max_steps;
    id_to_source[scheduler.submit(std::move(req))] = i % 3;
  }
  std::map<index_t, std::vector<index_t>> results;
  while (!scheduler.idle()) {
    if (scheduler.wait_for_prefill()) continue;
    scheduler.step();
    for (RequestResult& r : scheduler.take_results()) {
      EXPECT_TRUE(results.emplace(r.id, std::move(r.tokens)).second);
    }
    ASSERT_LT(scheduler.ticks(), 20000) << "scheduler stuck";
  }
  ASSERT_EQ(results.size(), 12u);
  for (const auto& [id, tokens] : results) {
    const Source& s =
        sources[static_cast<std::size_t>(id_to_source.at(id))];
    EXPECT_EQ(tokens, s.reference);
  }
  // 3 distinct sources over 12 requests: at least the resubmissions
  // AFTER each source's first publish must have hit.
  EXPECT_GE(scheduler.session().prefix_cache().hits(), 3);
  EXPECT_LE(scheduler.session().prefix_cache().insertions(), 3);
  obs::set_trace_enabled(trace_was);
}

}  // namespace
}  // namespace qdnn::serve
