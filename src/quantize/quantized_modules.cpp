#include "quantize/quantized_modules.h"

#include <algorithm>
#include <cmath>

#include "nn/im2col.h"

namespace qdnn::quantize {

// ---------------------------------------------------------------------------
// QuantizedLinear
// ---------------------------------------------------------------------------

QuantizedLinear::QuantizedLinear(nn::Linear& trained, const Tensor& sample,
                                 int bits, double percentile)
    : name_(trained.name() + ".int8"),
      in_(trained.in_features()),
      out_(trained.out_features()),
      weight_(quantize_per_channel(trained.weight().value, bits)),
      input_params_(choose_params_percentile(sample.data(), sample.numel(),
                                             bits, percentile)) {
  QDNN_CHECK_EQ(sample.rank(), 2, name_ << ": sample must be [N, in]");
  QDNN_CHECK_EQ(sample.dim(1), in_, name_ << ": sample width");
  if (trained.has_bias()) bias_ = trained.bias().value;
  // Fold the per-request constant input_scale · weight_scale[channel]
  // once — both factors are fixed for the module's lifetime.
  dequant_scales_.resize(static_cast<std::size_t>(out_));
  for (index_t j = 0; j < out_; ++j)
    dequant_scales_[static_cast<std::size_t>(j)] =
        input_params_.scale * weight_.params[static_cast<std::size_t>(j)].scale;
}

Tensor QuantizedLinear::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  const index_t n = input.dim(0);

  const QTensor qx = quantize_activations(input, input_params_);
  std::vector<std::int32_t> acc(static_cast<std::size_t>(n * out_));
  gemm_i8(qx.data.data(), weight_.data.data(), acc.data(), n, out_, in_);

  Tensor out{Shape{n, out_}};
  for (index_t s = 0; s < n; ++s) {
    for (index_t j = 0; j < out_; ++j) {
      float y =
          static_cast<float>(acc[static_cast<std::size_t>(s * out_ + j)]) *
          dequant_scales_[static_cast<std::size_t>(j)];
      if (!bias_.empty()) y += bias_[j];
      out.at(s, j) = y;
    }
  }
  return out;
}

Tensor QuantizedLinear::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": quantized modules are inference-only");
  return {};
}

// ---------------------------------------------------------------------------
// QuantizedProposedDense
// ---------------------------------------------------------------------------

QuantizedProposedDense::QuantizedProposedDense(
    quadratic::ProposedQuadraticDense& trained, const Tensor& sample,
    int bits, double percentile)
    : name_(trained.name() + ".int8"),
      in_(trained.in_features()),
      units_(trained.units()),
      rank_(trained.rank()),
      w_(quantize_per_channel(trained.w().value, bits)),
      q_(quantize_per_channel(trained.q().value, bits)),
      lambda_(trained.lambda().value),
      bias_(trained.bias().value),
      input_params_(choose_params_percentile(sample.data(), sample.numel(),
                                             bits, percentile)) {
  QDNN_CHECK_EQ(sample.rank(), 2, name_ << ": sample must be [N, in]");
  QDNN_CHECK_EQ(sample.dim(1), in_, name_ << ": sample width");
  QDNN_CHECK(rank_ <= 64, name_ << ": rank too large for epilogue buffer");
  const index_t uk = units_ * rank_;
  w_scales_.resize(static_cast<std::size_t>(units_));
  q_scales_.resize(static_cast<std::size_t>(uk));
  for (index_t u = 0; u < units_; ++u)
    w_scales_[static_cast<std::size_t>(u)] =
        input_params_.scale * w_.params[static_cast<std::size_t>(u)].scale;
  for (index_t r = 0; r < uk; ++r)
    q_scales_[static_cast<std::size_t>(r)] =
        input_params_.scale * q_.params[static_cast<std::size_t>(r)].scale;
}

Tensor QuantizedProposedDense::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, in]");
  QDNN_CHECK_EQ(input.dim(1), in_, name_ << ": in_features");
  const index_t n = input.dim(0);
  const index_t uk = units_ * rank_;

  const QTensor qx = quantize_activations(input, input_params_);
  // Both GEMMs of the proposed neuron consume the *same* quantized input:
  // y₁ accumulator [N, units] and feature accumulator [N, units·rank].
  std::vector<std::int32_t> acc_w(static_cast<std::size_t>(n * units_));
  std::vector<std::int32_t> acc_q(static_cast<std::size_t>(n * uk));
  gemm_i8(qx.data.data(), w_.data.data(), acc_w.data(), n, units_, in_);
  gemm_i8(qx.data.data(), q_.data.data(), acc_q.data(), n, uk, in_);

  const index_t out_w = out_features();
  Tensor out{Shape{n, out_w}};
  for (index_t s = 0; s < n; ++s) {
    float* o_row = out.data() + s * out_w;
    for (index_t u = 0; u < units_; ++u) {
      // Dequantize the k features of unit u, then apply the fp32 epilogue.
      float f[64];  // rank is small (paper uses k = 9); checked in ctor
      for (index_t i = 0; i < rank_; ++i) {
        const index_t row = u * rank_ + i;
        f[i] = static_cast<float>(
                   acc_q[static_cast<std::size_t>(s * uk + row)]) *
               q_scales_[static_cast<std::size_t>(row)];
      }
      const float s_w = w_scales_[static_cast<std::size_t>(u)];
      const float y1 =
          static_cast<float>(acc_w[static_cast<std::size_t>(s * units_ + u)]) *
          s_w;
      const float* lam = lambda_.data() + u * rank_;
      float y2 = 0.0f;
      for (index_t i = 0; i < rank_; ++i) y2 += lam[i] * f[i] * f[i];
      float* o_u = o_row + u * (rank_ + 1);
      o_u[0] = y1 + bias_[u] + y2;
      for (index_t i = 0; i < rank_; ++i) o_u[1 + i] = f[i];
    }
  }
  return out;
}

Tensor QuantizedProposedDense::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": quantized modules are inference-only");
  return {};
}

// ---------------------------------------------------------------------------
// Conv helpers
// ---------------------------------------------------------------------------

namespace {

// Extracts one sample's im2col patches directly as int8 codes on the
// calibrated activation grid: fake-quantize the image, float im2col (zero
// padding stays exact), then code conversion.
void im2col_codes(const float* image, index_t h, index_t w,
                  const nn::ConvGeometry& g, const QuantParams& params,
                  std::vector<float>& scratch, std::vector<std::int8_t>& out) {
  const index_t n_cols = g.out_extent(h) * g.out_extent(w);
  const index_t total = g.patch_size() * n_cols;
  scratch.resize(static_cast<std::size_t>(total));
  out.resize(static_cast<std::size_t>(total));

  // Fake-quantize the image into a temporary so the patches are grid
  // multiples before code conversion.
  const index_t image_elems = g.in_channels * h * w;
  std::vector<float> fq(static_cast<std::size_t>(image_elems));
  const float qmax = static_cast<float>(params.qmax());
  for (index_t i = 0; i < image_elems; ++i) {
    float q = std::nearbyint(image[i] / params.scale);
    q = std::min(std::max(q, -qmax), qmax);
    fq[static_cast<std::size_t>(i)] = q * params.scale;
  }
  nn::im2col(fq.data(), h, w, g, scratch.data());
  to_codes(scratch.data(), total, params, out.data());
}

}  // namespace

// ---------------------------------------------------------------------------
// QuantizedConv2d
// ---------------------------------------------------------------------------

QuantizedConv2d::QuantizedConv2d(nn::Conv2d& trained, const Tensor& sample,
                                 int bits, double percentile)
    : name_(trained.name() + ".int8"),
      geometry_(trained.geometry()),
      out_channels_(trained.out_channels()),
      weight_(quantize_per_channel(trained.weight().value, bits)),
      input_params_(choose_params_percentile(sample.data(), sample.numel(),
                                             bits, percentile)) {
  QDNN_CHECK_EQ(sample.rank(), 4, name_ << ": sample must be [N,C,H,W]");
  QDNN_CHECK_EQ(sample.dim(1), geometry_.in_channels, name_ << ": channels");
  if (trained.has_bias()) bias_ = trained.bias().value;
  dequant_scales_.resize(static_cast<std::size_t>(out_channels_));
  for (index_t f = 0; f < out_channels_; ++f)
    dequant_scales_[static_cast<std::size_t>(f)] =
        input_params_.scale * weight_.params[static_cast<std::size_t>(f)].scale;
}

Tensor QuantizedConv2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t n_cols = oh * ow;
  const index_t patch = geometry_.patch_size();

  Tensor out{Shape{n, out_channels_, oh, ow}};
  std::vector<float> scratch;
  std::vector<std::int8_t> codes;
  std::vector<std::int32_t> acc(static_cast<std::size_t>(out_channels_ * n_cols));
  for (index_t s = 0; s < n; ++s) {
    im2col_codes(input.data() + s * geometry_.in_channels * h * w, h, w,
                 geometry_, input_params_, scratch, codes);
    gemm_i8_nn(weight_.data.data(), codes.data(), acc.data(), out_channels_,
               n_cols, patch);
    float* out_s = out.data() + s * out_channels_ * n_cols;
    for (index_t f = 0; f < out_channels_; ++f) {
      const float scale = dequant_scales_[static_cast<std::size_t>(f)];
      const float b = bias_.empty() ? 0.0f : bias_[f];
      const std::int32_t* acc_row = acc.data() + f * n_cols;
      float* o_row = out_s + f * n_cols;
      for (index_t j = 0; j < n_cols; ++j)
        o_row[j] = static_cast<float>(acc_row[j]) * scale + b;
    }
  }
  return out;
}

Tensor QuantizedConv2d::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": quantized modules are inference-only");
  return {};
}

// ---------------------------------------------------------------------------
// QuantizedProposedConv2d
// ---------------------------------------------------------------------------

QuantizedProposedConv2d::QuantizedProposedConv2d(
    quadratic::ProposedQuadConv2d& trained, const Tensor& sample, int bits,
    double percentile)
    : name_(trained.name() + ".int8"),
      geometry_(trained.geometry()),
      filters_(trained.filters()),
      rank_(trained.rank()),
      emit_features_(trained.emit_features()),
      w_(quantize_per_channel(trained.w().value, bits)),
      q_(quantize_per_channel(trained.q().value, bits)),
      lambda_(trained.lambda().value),
      bias_(trained.bias().value),
      input_params_(choose_params_percentile(sample.data(), sample.numel(),
                                             bits, percentile)) {
  QDNN_CHECK_EQ(sample.rank(), 4, name_ << ": sample must be [N,C,H,W]");
  QDNN_CHECK_EQ(sample.dim(1), geometry_.in_channels, name_ << ": channels");
  const index_t fr = filters_ * rank_;
  w_scales_.resize(static_cast<std::size_t>(filters_));
  q_scales_.resize(static_cast<std::size_t>(fr));
  for (index_t f = 0; f < filters_; ++f)
    w_scales_[static_cast<std::size_t>(f)] =
        input_params_.scale * w_.params[static_cast<std::size_t>(f)].scale;
  for (index_t r = 0; r < fr; ++r)
    q_scales_[static_cast<std::size_t>(r)] =
        input_params_.scale * q_.params[static_cast<std::size_t>(r)].scale;
}

Tensor QuantizedProposedConv2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t n_cols = oh * ow;
  const index_t patch = geometry_.patch_size();
  const index_t fr = filters_ * rank_;
  const index_t ch_per_filter = emit_features_ ? rank_ + 1 : 1;

  Tensor out{Shape{n, out_channels(), oh, ow}};
  std::vector<float> scratch;
  std::vector<std::int8_t> codes;
  std::vector<std::int32_t> acc_w(static_cast<std::size_t>(filters_ * n_cols));
  std::vector<std::int32_t> acc_q(static_cast<std::size_t>(fr * n_cols));
  for (index_t s = 0; s < n; ++s) {
    im2col_codes(input.data() + s * geometry_.in_channels * h * w, h, w,
                 geometry_, input_params_, scratch, codes);
    // The proposed neuron's deployment advantage in integer form: both
    // the linear part and the features come from the same code matrix.
    gemm_i8_nn(w_.data.data(), codes.data(), acc_w.data(), filters_, n_cols,
               patch);
    gemm_i8_nn(q_.data.data(), codes.data(), acc_q.data(), fr, n_cols,
               patch);

    float* out_s = out.data() + s * out_channels() * n_cols;
    for (index_t f = 0; f < filters_; ++f) {
      const float s_w = w_scales_[static_cast<std::size_t>(f)];
      const float* lam = lambda_.data() + f * rank_;
      float* y_row = out_s + f * ch_per_filter * n_cols;
      const std::int32_t* accw_row = acc_w.data() + f * n_cols;
      const float b = bias_[f];
      for (index_t j = 0; j < n_cols; ++j)
        y_row[j] = static_cast<float>(accw_row[j]) * s_w + b;
      for (index_t i = 0; i < rank_; ++i) {
        const index_t row = f * rank_ + i;
        const float s_q = q_scales_[static_cast<std::size_t>(row)];
        const std::int32_t* accq_row = acc_q.data() + row * n_cols;
        const float l = lam[i];
        float* o_row = emit_features_ ? y_row + (1 + i) * n_cols : nullptr;
        for (index_t j = 0; j < n_cols; ++j) {
          const float fij = static_cast<float>(accq_row[j]) * s_q;
          y_row[j] += l * fij * fij;
          if (o_row) o_row[j] = fij;
        }
      }
    }
  }
  return out;
}

Tensor QuantizedProposedConv2d::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": quantized modules are inference-only");
  return {};
}

}  // namespace qdnn::quantize
