// BatchScheduler: continuous batching over one bound DecodeSession.
//
// PR 3's DecodeSession serves one fixed batch per prime: every request
// must start together and the batch occupies its KV rings until the
// slowest row finishes.  The scheduler removes that coupling — it owns a
// request queue plus one session bound at full max_batch width, and each
// tick it:
//
//   1. expires deadlines (queued requests past deadline_tick are shed,
//      live rows past it retire mid-flight with FinishReason::kDeadline),
//   2. admits queued requests into free batch rows in priority order
//      (per-row prime: the request's source is encoded and
//      cross-projected into just its row's caches while the other rows
//      keep decoding mid-flight),
//   3. steps the WHOLE batch once — one gemm-backed pass over all rows,
//      every live row at its own ring position (per-row cache lengths in
//      the attention step kernels),
//   4. samples one token per live row through its request's head
//      (greedy / temperature / top-k, per-request seeded Rng), streaming
//      it to the request's on_token callback the moment it exists,
//   5. retires rows that emitted eos or exhausted their budget, so the
//      freed slot is refilled at the very next tick.
//
// Throughput therefore tracks occupancy instead of the slowest request
// (bench/serve_bench.cpp measures continuous vs static batching under
// Poisson arrivals).
//
// Front-end behaviors (the multi-tenant contract, per request):
//
//   * priorities + aging — the admission queue orders by Priority class;
//     a waiting request's effective class rises one level every
//     config.age_ticks ticks (FIFO within a class), so low priority
//     cannot starve.  Priority changes WHEN a request admits, never its
//     tokens.
//   * backpressure — with config.max_queue > 0, a submit that finds
//     queued() at the bound load-sheds: the request resolves immediately
//     with FinishReason::kShed instead of growing the queue unboundedly.
//   * cancellation — cancel(id) resolves a request wherever it is:
//     removed from the queue, flagged while its prefill is in flight on
//     the pool (resolved at the next drain), or retired mid-flight with
//     the tokens decoded so far, freeing the KV row for the next admit.
//   * deadlines — deadline_tick is the absolute tick bound; see step 1.
//   * streaming — on_token fires on the serving thread as each token is
//     sampled; RequestResult::first_token_tick records TTFT.
//
// Every submitted id resolves with EXACTLY one RequestResult — shed,
// errored, cancelled, expired, or decoded to completion.
//
// Admission comes in two modes, selected by config.prefill_workers:
//
//   * synchronous (0, default) — the prefill (encoder pass + cross-K/V
//     projection) runs on the serving thread at admission, exactly the
//     PR 4 behavior: single-threaded, deterministic tick-for-tick.
//   * asynchronous (>= 1) — a serve::PrefillPool runs the prefill on
//     worker threads into preallocated staging buffers; the scheduler
//     feeds the pool from its priority queue (keeping at most
//     prefill_slots jobs inside it, so priorities still bite) and each
//     tick drains finished prefills into free rows with
//     DecodeSession::commit_row, so admission costs the tick exactly one
//     O(K/V) copy and a long prefill never stalls the live decode rows.
//     Both modes run the same compute (prime_row is implemented as
//     prime_compute + commit_row), so per-request outputs are
//     bit-identical across modes and to solo decodes — only the
//     admission *timing* can differ (fuzzed in
//     tests/serve/prefill_test.cpp).
//
// Contracts:
//   * Equivalence — a greedy request's tokens are bit-identical to a solo
//     DecodeSession::generate / greedy_decode_reference of that request,
//     for ANY admission/retirement interleaving, either admission mode,
//     and any priority/cancellation activity around it (per-row masked
//     attention is exact; fuzzed in tests/serve/scheduler_test.cpp and
//     tests/serve/prefill_test.cpp).
//   * Determinism — stochastic requests draw from their own seeded Rng,
//     so results are reproducible regardless of admission order.
//   * Zero-alloc steady state — all per-row bookkeeping (slots, sampling
//     scratch, stats sample rings) is preallocated at bind, and each
//     request carries its own warm token buffer (reserved at submit,
//     swapped into the slot at admission, handed off inside the
//     RequestResult at retirement), so steady-state ticks — including the
//     retire→admit slot cycle, and including async admission itself (an
//     O(K/V) commit copy) — perform no heap allocation (asserted in
//     tests/runtime/session_test.cpp).  Synchronous admission allocates —
//     it runs the encoder; submit and take_results allocate (queue
//     growth / result hand-off), and so do the resolution paths for
//     shed/cancelled/errored requests (error strings).
//
// Paged KV + prefix reuse (PR 10): the session's KV memory is a page
// pool, so admission gates on ACTUAL free pages (plus what evicting
// cached prefixes could reclaim), not on the dense worst case — with
// config.session.pool_pages below the dense bound the scheduler
// oversubscribes max_batch with short/shared-prefix requests.  Admission
// first probes the session's prefix cache (sync:
// try_commit_row_from_cache on the serving thread; async: the pool
// workers probe before computing), and a hit skips the entire prefill —
// bit-identical to the cold prime, because the shared pages hold the
// cold prime's bits.  When a decode step finds the pool dry (a live row
// needs its next self-KV page and ensure_row_step_capacity fails), the
// scheduler PREEMPTS: the lowest-priority-class, youngest-admitted live
// row is evicted — its pages released, its job (tokens decoded so far,
// Rng state, original admission/first-token stamps) requeued at the
// FRONT of the admission queue — and at re-admission the scheduler
// re-primes the row (usually a prefix-cache hit) and REPLAYS the
// decoded tokens through the session without sampling, streaming or
// appending, so the resumed decode is bit-identical to an unpreempted
// run and every id still resolves exactly once with its FinishReason
// untouched.
//
// The serving loop stays single-threaded: callers pump step()/cancel()
// and drain take_results() from one thread; only the prefill compute
// moves to the pool.  serve::Server (serve/server.h) wraps N schedulers
// on worker threads behind one thread-safe front end.
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/decode_session.h"
#include "serve/prefill.h"
#include "serve/request.h"

namespace qdnn::serve {

struct BatchSchedulerConfig {
  // Ring geometry and freeze/warm-up policy for the owned session.
  // max_batch is the continuous-batch width; max_steps bounds every
  // request's budget.
  runtime::DecodeSessionConfig session;
  index_t bos = 1;
  index_t eos = 2;
  // 0 = synchronous admission (prefill on the serving thread — the
  // deterministic single-threaded mode); >= 1 = asynchronous admission
  // through a PrefillPool with this many worker threads.
  index_t prefill_workers = 0;
  // Staging slots for the async pool (finished prefills awaiting a free
  // row); 0 = max_batch.  Ignored in synchronous mode.
  index_t prefill_slots = 0;
  // Bounded admission: the most requests allowed to wait for a batch row
  // (sync queue + async prefill pipeline, i.e. queued()).  A submit that
  // finds the bound reached is load-shed — it resolves immediately with
  // FinishReason::kShed instead of growing the queue.  0 = unbounded.
  index_t max_queue = 0;
  // Priority aging: a waiting request's effective class drops one level
  // (toward kHigh) every age_ticks ticks, so low priority cannot starve
  // behind a steady high-priority stream.  0 disables aging.
  index_t age_ticks = 32;
  // Per-class sample window for the queue-wait and time-to-first-token
  // percentiles in SchedulerStats (a preallocated ring; the newest
  // samples win).  0 disables percentile tracking (counts remain).
  index_t stats_window = 2048;
  // Metrics sink.  Every counter/gauge/histogram the scheduler records
  // is registered here at construction under `metrics_prefix` (so the
  // tick path only ever touches preallocated instruments — recording is
  // zero-heap-alloc and wait-free).  Null = the scheduler owns a private
  // registry; serve::Server passes its own so shards share one snapshot.
  // The registry must outlive the scheduler.
  obs::MetricsRegistry* registry = nullptr;
  std::string metrics_prefix = "scheduler";
  // Capacity of the per-scheduler trace ring (timestamped request
  // lifecycle events, recorded only while obs::trace_enabled(); oldest
  // overwritten on wrap).  Must be >= 1.
  index_t trace_events = 4096;
};

// Per-priority-class counters and latency percentiles (batch-tick
// denominated), over the most recent config.stats_window samples.
struct SchedulerClassStats {
  index_t submitted = 0;  // includes shed
  index_t completed = 0;  // kEos + kLength
  index_t cancelled = 0;
  index_t expired = 0;    // kDeadline
  index_t shed = 0;
  index_t errored = 0;
  index_t queue_wait_samples = 0;
  index_t ttft_samples = 0;
  double queue_wait_p50 = 0.0, queue_wait_p99 = 0.0;  // admit − submit
  double ttft_p50 = 0.0, ttft_p99 = 0.0;  // first token − submit
};

// Snapshot of the scheduler's counters — cheap to take off the tick
// path (the percentile sort allocates; call it from a stats poller, not
// per tick).
struct SchedulerStats {
  index_t ticks = 0;
  index_t stepped_ticks = 0;
  index_t total_tokens = 0;
  double mean_occupancy = 0.0;
  // Request latency (finish − submit, in ticks) over the most recent
  // config.stats_window retirements, all classes pooled — the end-to-end
  // sibling of the per-class queue-wait/TTFT percentiles.
  index_t latency_samples = 0;
  double latency_p50 = 0.0, latency_p99 = 0.0;
  // Wall time of stepped ticks (milliseconds, steady_clock): mean over
  // ALL stepped ticks since construction, p99 over the most recent
  // config.stats_window — what admission-mode jitter looks like from the
  // serving thread.
  index_t tick_samples = 0;
  double tick_mean_ms = 0.0, tick_p99_ms = 0.0;
  // Paged KV / prefix-cache counters (PR 10).  The prefix counts come
  // from the session's cache (hits include the pool workers' probes);
  // preemptions counts rows evicted under page pressure and replayed.
  long long prefix_hits = 0;
  long long prefix_misses = 0;
  long long prefix_insertions = 0;
  long long prefix_evictions = 0;
  index_t preemptions = 0;
  index_t free_pages = 0;
  index_t total_pages = 0;
  std::array<SchedulerClassStats, kPriorityClasses> per_class;
};

class BatchScheduler {
 public:
  // Binds the model (exclusively, like any DecodeSession) and
  // preallocates every slot.  Validates bos/eos against the target
  // vocabulary; the session constructor validates the ring geometry.
  BatchScheduler(models::Transformer& model, BatchSchedulerConfig config);

  // Enqueues a request, validating it at the edge (source length vs
  // max_src, budget vs max_steps, sampling parameters, explicit-id
  // uniqueness among in-flight requests) so a malformed request fails
  // here with a clear message, not steps later inside a kernel.  Also
  // reserves the request's warm token buffer here, so the later
  // admit/retire ticks never allocate.  With config.max_queue > 0 a full
  // queue load-sheds: the returned id resolves immediately with a kShed
  // result.  In async mode the job is fed to the prefill pool as soon as
  // a staging slot is open.  Returns the request id.  Allocates (queue
  // growth + buffer reserve).
  index_t submit(Request request);

  // Resolves the in-flight request `id` with FinishReason::kCancelled:
  // removed from the admission queue (empty tokens), flagged while its
  // prefill is in flight on the pool (resolved at the next tick's
  // drain), or retired mid-flight right here with the tokens decoded so
  // far — the freed KV row admits the next request on the following
  // tick.  Returns false (and does nothing) when `id` is unknown,
  // already resolved, or already cancelled — a submitted id always
  // resolves with exactly ONE result, however many times it is
  // cancelled.
  bool cancel(index_t id);

  // One tick: expire deadlines → admit → batch-step → sample/stream →
  // retire (see file comment).  Returns the number of live rows that
  // were stepped (0 = nothing to do; the tick still counts, so arrival
  // traces keyed on ticks work).  Async mode: admission drains finished
  // prefills only — a tick never waits on the pool.
  index_t step();

  // Async tick-driver helper: when the ONLY outstanding work is a
  // prefill still computing (no live rows, nothing admissible, no due
  // deadline), blocks until the pool finishes one and returns true —
  // callers `continue` instead of stepping, so the tick clock never
  // free-runs orders of magnitude faster than real batch steps (which
  // would collapse arrival schedules and inflate tick-denominated
  // latencies) and the serving core is not stolen from the workers.
  // Returns false (without blocking) whenever a step would do real work;
  // always false in sync mode.  run() uses it; external drivers pumping
  // step() should too.
  bool wait_for_prefill() const;

  // Ticks until every submitted request has retired (in async mode,
  // yielding while prefills are still in flight).
  void run();

  bool idle() const {
    return live_rows_ == 0 && queue_.empty() && !has_held_ &&
           (!prefill_ || prefill_->pending() == 0);
  }
  // Results finished and not yet taken — a cheap guard so drivers can
  // skip the take_results() allocation when there is nothing to drain.
  index_t results_ready() const {
    return static_cast<index_t>(completed_.size());
  }
  // Moves out the results finished since the last call (retirement
  // order).  Allocates (the moved-out vector is replaced by a freshly
  // reserved one, off the tick path).
  std::vector<RequestResult> take_results();

  // Requests submitted and not yet admitted (sync queue + async pool +
  // a finished prefill held back waiting for KV pages).
  index_t queued() const {
    return static_cast<index_t>(queue_.size()) +
           (prefill_ ? prefill_->pending() : 0) + (has_held_ ? 1 : 0);
  }
  index_t live_rows() const { return live_rows_; }
  index_t ticks() const { return ticks_; }
  index_t total_tokens() const {
    return static_cast<index_t>(tokens_counter_->value());
  }
  // Mean live rows per stepped tick — the occupancy continuous batching
  // keeps high and static batching lets decay.
  double mean_occupancy() const;
  // Counter/percentile snapshot (see SchedulerStats).  Since PR 9 this
  // is a view over the metrics registry (counts) plus the sample rings
  // (exact percentiles).  Allocates (the percentile sort) — call off the
  // tick path.
  SchedulerStats stats() const;
  // The registry holding this scheduler's instruments (the configured
  // one, or the privately owned default).  snapshot()/exporters are safe
  // from any thread.
  const obs::MetricsRegistry& metrics() const { return *registry_; }
  // The per-scheduler trace ring (empty unless obs::trace_enabled()).
  const obs::TraceRing& trace() const { return trace_; }
  const runtime::DecodeSession& session() const { return session_; }
  // The async admission pool (null in synchronous mode).
  const PrefillPool* prefill_pool() const { return prefill_.get(); }

 private:
  struct Slot {
    bool live = false;
    index_t id = -1;
    index_t budget = 0;
    SamplingConfig sampling;
    Rng rng{0};
    std::vector<index_t> tokens;  // the request's warm buffer (admission)
    index_t submit_tick = 0;
    index_t admit_tick = 0;
    Priority priority = Priority::kNormal;
    index_t deadline_tick = 0;
    index_t first_token_tick = -1;
    std::function<void(const StreamEvent&)> on_token;
    // The request itself stays with the slot (source ids, sampling,
    // deadline) so a preemption can requeue the job wholesale.
    Request request;
    // Replay window after a preempted re-admission: while replay_pos <
    // replay_len the step loop FEEDS tokens[replay_pos] instead of
    // sampling — no Rng draw, no stream, no append — rebuilding the KV
    // state bit-identically before live decoding resumes.
    index_t replay_pos = 0;
    index_t replay_len = 0;
    // Trace-sampling decision carried from the job (see PrefillJob).
    bool sampled = false;
    // Wall-clock trace timestamps (0 = not trace-sampled); turned into
    // RequestResult::phases at retirement.
    long long submit_ns = 0;
    long long admit_ns = 0;
    long long prefill_ns = 0;  // duration, stamped by the prefill thread
    long long first_token_ns = 0;
  };

  // Fixed-capacity sample window: push_back stays inside the reserved
  // capacity, then the ring overwrites the oldest — record() never
  // allocates on the tick path.  The bound is the configured window, NOT
  // buf.capacity(): reserve() may round up, and the window must stay
  // exactly config.stats_window.
  struct SampleRing {
    std::vector<double> buf;
    std::size_t window = 0;  // configured sample bound
    std::size_t next = 0;
    void record(double v) {
      if (window == 0) return;
      if (buf.size() < window) {
        buf.push_back(v);
      } else {
        buf[next] = v;
        next = (next + 1) % window;
      }
    }
  };

  index_t effective_class(const PrefillJob& job) const;
  void register_metrics();
  std::deque<PrefillJob>::iterator pick_queued();
  void expire_deadlines();
  void pump_pool();
  void admit_sync();
  void admit_async();
  void resolve_unadmitted(PrefillJob&& job, FinishReason reason);
  void resolve_failed(PrefillJob&& job, std::exception_ptr error);
  void install(index_t row, PrefillJob&& job);
  void retire(index_t row, FinishReason reason);
  // Page-pressure preemption (PR 10): the victim is the live row with the
  // WORST static priority class, youngest admit_tick breaking ties.
  index_t pick_victim() const;
  // Evicts `row`: releases its KV pages, requeues its job (tokens so
  // far, Rng, original stamps) at the FRONT of the admission queue.
  void preempt(index_t row);

  BatchSchedulerConfig config_;
  index_t vocab_ = 0;
  runtime::DecodeSession session_;

  // Admission queue, both modes: submit appends (FIFO), admission picks
  // by effective priority class.  In async mode pump_pool() moves the
  // best-class jobs into the PrefillPool as staging slots open.
  std::deque<PrefillJob> queue_;
  std::vector<Slot> slots_;
  std::vector<index_t> feed_;       // next input token per row
  std::vector<index_t> free_rows_;  // stack; lowest row admitted first
  std::vector<RequestResult> completed_;  // reserved for max_batch results
  Tensor prob_scratch_;                // [vocab], sampling CDF scratch
  std::vector<index_t> idx_scratch_;  // [vocab], top-k selection scratch

  // Ids of every unresolved request (queued, in the pool, or live) — the
  // explicit-id uniqueness check and the cancel() routing table.
  std::unordered_set<index_t> inflight_ids_;
  // Cancelled while their prefill was in flight on the pool; resolved
  // (and erased) when the pool hands the job back.
  std::unordered_set<index_t> pool_cancelled_;

  std::array<SampleRing, kPriorityClasses> queue_wait_ring_;
  std::array<SampleRing, kPriorityClasses> ttft_ring_;
  SampleRing latency_ring_;  // finish − submit ticks, all classes pooled
  SampleRing tick_ring_;     // stepped-tick wall ms
  double tick_ms_sum_ = 0.0;
  index_t tick_ms_count_ = 0;

  // --- observability (PR 9) ---
  // The scheduler's counts live in registry instruments, registered once
  // in the constructor (register_metrics) so every record on the tick
  // path is a preallocated relaxed atomic op.  SchedulerStats is a view
  // over these plus the sample rings above.  `ticks_`/`live_rows_` keep
  // plain mirrors because control flow reads them constantly.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::MetricsRegistry* registry_ = nullptr;  // config's or owned
  obs::TraceRing trace_;
  struct ClassCounters {
    obs::Counter* submitted = nullptr;
    obs::Counter* completed = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Counter* expired = nullptr;
    obs::Counter* shed = nullptr;
    obs::Counter* errored = nullptr;
    // Per-class phase histograms (µs, from RequestResult::phases):
    // populated only for trace-sampled requests (obs::trace_sample()).
    obs::Histogram* queue_us = nullptr;
    obs::Histogram* prefill_us = nullptr;
    obs::Histogram* first_token_us = nullptr;
    obs::Histogram* decode_us = nullptr;
  };
  std::array<ClassCounters, kPriorityClasses> class_counters_{};
  obs::Counter* ticks_counter_ = nullptr;
  obs::Counter* stepped_ticks_counter_ = nullptr;
  obs::Counter* tokens_counter_ = nullptr;
  obs::Counter* occupancy_sum_counter_ = nullptr;
  obs::Gauge* live_rows_gauge_ = nullptr;
  obs::Gauge* queue_depth_gauge_ = nullptr;
  obs::Histogram* queue_wait_hist_ = nullptr;  // ticks, classes pooled
  obs::Histogram* ttft_hist_ = nullptr;        // ticks, classes pooled
  obs::Histogram* latency_hist_ = nullptr;     // ticks
  obs::Histogram* tick_us_hist_ = nullptr;     // stepped-tick wall µs
  // --- paged KV / prefix cache (PR 10) ---
  obs::Counter* preempted_counter_ = nullptr;
  obs::Gauge* free_pages_gauge_ = nullptr;
  obs::Gauge* used_pages_gauge_ = nullptr;
  obs::Gauge* prefix_entries_gauge_ = nullptr;

  index_t next_id_ = 0;
  index_t ticks_ = 0;
  index_t live_rows_ = 0;
  // Trace-sampling sequence: every Nth submit (obs::trace_sample()) is
  // sampled; serving-thread only.
  index_t trace_seq_ = 0;

  // Async admission, page gate: a finished prefill whose commit would
  // need more pages than free + reclaimable is HELD here (still owning
  // its staging slot) until pages free up — it counts in queued() and
  // blocks idle(), so every id still resolves.
  PrefillPool::Finished held_fin_;
  bool has_held_ = false;

  // Declared after session_ so it joins its workers (which touch the
  // session's staging API) before the session unbinds.
  std::unique_ptr<PrefillPool> prefill_;
};

}  // namespace qdnn::serve
