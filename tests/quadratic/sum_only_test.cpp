// The sum-only ablation variant (proposed neuron without the vectorized
// output, Sec. III-B removed): identical quadratic form, one output per
// neuron.  These tests pin down its contract against the full neuron.
#include <gtest/gtest.h>

#include "gradcheck_util.h"
#include "quadratic/complexity.h"
#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"

namespace qdnn::quadratic {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

// ---------------------------------------------------------------------------
// Dense
// ---------------------------------------------------------------------------

TEST(SumOnlyDense, OutputWidthIsUnits) {
  Rng rng(1);
  ProposedQuadraticDense full(8, 3, 4, rng, 1e-3f, "full");
  ProposedQuadraticDense sum(8, 3, 4, rng, 1e-3f, "sum", false);
  EXPECT_EQ(full.out_features(), 3 * 5);
  EXPECT_EQ(sum.out_features(), 3);
}

TEST(SumOnlyDense, YChannelMatchesFullNeuron) {
  // With identical parameters, the sum-only output must equal the full
  // neuron's y channels exactly — disabling emission must not change the
  // quadratic computation itself.
  Rng rng(2);
  ProposedQuadraticDense full(8, 3, 4, rng, 1e-3f, "full");
  Rng rng2(99);
  ProposedQuadraticDense sum(8, 3, 4, rng2, 1e-3f, "sum", false);
  auto src = full.parameters();
  auto dst = sum.parameters();
  ASSERT_EQ(src.size(), dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;

  const Tensor x = random_tensor(Shape{5, 8}, 7);
  const Tensor y_full = full.forward(x);
  const Tensor y_sum = sum.forward(x);
  for (index_t s = 0; s < 5; ++s)
    for (index_t u = 0; u < 3; ++u)
      EXPECT_FLOAT_EQ(y_sum.at(s, u), y_full.at(s, u * 5))
          << "sample " << s << " unit " << u;
}

TEST(SumOnlyDense, Gradcheck) {
  Rng rng(3);
  ProposedQuadraticDense layer(6, 2, 3, rng, 1.0f, "sum", false);
  EXPECT_TRUE(gradcheck_module(layer, random_tensor(Shape{4, 6}, 11)));
}

TEST(SumOnlyDense, ParamCountEqualsFullNeuron) {
  // Disabling emission changes outputs, not parameters.
  Rng rng(4);
  ProposedQuadraticDense full(10, 4, 5, rng);
  Rng rng2(5);
  ProposedQuadraticDense sum(10, 4, 5, rng2, 1e-3f, "sum", false);
  EXPECT_EQ(full.num_parameters(), sum.num_parameters());
}

// ---------------------------------------------------------------------------
// Conv
// ---------------------------------------------------------------------------

TEST(SumOnlyConv, OutChannelsIsFilters) {
  Rng rng(6);
  ProposedQuadConv2d conv(3, 4, 3, 1, 1, 5, rng, 1e-3f, "sum", false);
  EXPECT_EQ(conv.out_channels(), 4);
  const Tensor x = random_tensor(Shape{2, 3, 6, 6}, 13);
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), Shape({2, 4, 6, 6}));
}

TEST(SumOnlyConv, YChannelMatchesFullNeuron) {
  Rng rng(7);
  ProposedQuadConv2d full(2, 3, 3, 1, 1, 4, rng, 1e-3f, "full");
  Rng rng2(8);
  ProposedQuadConv2d sum(2, 3, 3, 1, 1, 4, rng2, 1e-3f, "sum", false);
  auto src = full.parameters();
  auto dst = sum.parameters();
  ASSERT_EQ(src.size(), dst.size());
  for (std::size_t i = 0; i < src.size(); ++i) dst[i]->value = src[i]->value;

  const Tensor x = random_tensor(Shape{2, 2, 5, 5}, 17);
  const Tensor y_full = full.forward(x);
  const Tensor y_sum = sum.forward(x);
  for (index_t s = 0; s < 2; ++s)
    for (index_t f = 0; f < 3; ++f)
      for (index_t i = 0; i < 5; ++i)
        for (index_t j = 0; j < 5; ++j)
          EXPECT_FLOAT_EQ(y_sum.at(s, f, i, j), y_full.at(s, f * 5, i, j));
}

TEST(SumOnlyConv, Gradcheck) {
  Rng rng(9);
  ProposedQuadConv2d conv(2, 2, 3, 1, 1, 3, rng, 1.0f, "sum", false);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{2, 2, 4, 4}, 19)));
}

// ---------------------------------------------------------------------------
// Factory + complexity
// ---------------------------------------------------------------------------

TEST(SumOnlySpec, FactoryProducesRequestedWidths) {
  Rng rng(10);
  NeuronSpec spec = NeuronSpec::of(NeuronKind::kProposedSumOnly, 5);
  EXPECT_EQ(spec.outputs_per_neuron(), 1);
  EXPECT_EQ(conv_out_channels(spec, 16), 16);

  auto dense = make_dense_neuron(spec, 8, 6, rng, "fc");
  const Tensor x = random_tensor(Shape{2, 8}, 23);
  EXPECT_EQ(dense->forward(x).shape(), Shape({2, 6}));

  auto conv = make_conv_neuron(spec, 3, 10, 3, 1, 1, rng, "conv");
  const Tensor img = random_tensor(Shape{1, 3, 4, 4}, 29);
  EXPECT_EQ(conv->forward(img).dim(1), 10);
}

TEST(SumOnlySpec, PerOutputCostIsKPlus1TimesLinear) {
  // The whole point of the ablation: same neuron cost, but ÷1 instead of
  // ÷(k+1) per output.
  const index_t n = 576, k = 9;
  const NeuronSpec sum = NeuronSpec::of(NeuronKind::kProposedSumOnly, k);
  const NeuronSpec full = NeuronSpec::of(NeuronKind::kProposed, k);
  EXPECT_EQ(neuron_cost(sum, n).params, neuron_cost(full, n).params);
  EXPECT_EQ(neuron_cost(sum, n).macs, neuron_cost(full, n).macs);
  EXPECT_DOUBLE_EQ(params_per_output(sum, n),
                   static_cast<double>((k + 1) * n + k));
  EXPECT_DOUBLE_EQ(params_per_output(sum, n),
                   (k + 1) * params_per_output(full, n));
}

}  // namespace
}  // namespace qdnn::quadratic
