#include "analysis/param_stats.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace qdnn::analysis {

LayerParamStats stats_of(const std::string& layer, const std::string& group,
                         const std::vector<float>& values) {
  LayerParamStats s;
  s.layer = layer;
  s.group = group;
  s.count = static_cast<index_t>(values.size());
  if (values.empty()) return s;

  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double mean = 0.0;
  for (float v : sorted) mean += v;
  mean /= static_cast<double>(sorted.size());
  double var = 0.0;
  for (float v : sorted) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(sorted.size());
  s.mean = static_cast<float>(mean);
  s.stddev = static_cast<float>(std::sqrt(var));
  auto quantile = [&sorted](double q) {
    const double pos = q * (static_cast<double>(sorted.size()) - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return static_cast<float>(sorted[lo] * (1.0 - frac) +
                              sorted[hi] * frac);
  };
  s.q05 = quantile(0.05);
  s.q95 = quantile(0.95);
  return s;
}

std::vector<LayerParamStats> per_layer_stats(
    const std::vector<nn::Module*>& layers) {
  std::vector<LayerParamStats> all;
  for (nn::Module* layer : layers) {
    std::map<std::string, std::vector<float>> by_group;
    for (const nn::Parameter* p : layer->parameters()) {
      auto& bucket = by_group[p->group];
      for (index_t i = 0; i < p->value.numel(); ++i)
        bucket.push_back(p->value[i]);
    }
    for (const auto& [group, values] : by_group)
      all.push_back(stats_of(layer->name(), group, values));
  }
  return all;
}

}  // namespace qdnn::analysis
