#include "nn/im2col.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace qdnn::nn {
namespace {

TEST(ConvGeometry, OutExtent) {
  const ConvGeometry g{3, 3, 1, 1};
  EXPECT_EQ(g.out_extent(8), 8);   // same padding
  EXPECT_EQ(g.patch_size(), 27);
  const ConvGeometry s2{3, 3, 2, 1};
  EXPECT_EQ(s2.out_extent(8), 4);
  const ConvGeometry k1{16, 1, 1, 0};
  EXPECT_EQ(k1.out_extent(8), 8);
  EXPECT_EQ(k1.patch_size(), 16);
}

TEST(Im2col, IdentityFor1x1Kernel) {
  const ConvGeometry g{2, 1, 1, 0};
  Rng rng(1);
  Tensor img{Shape{2, 3, 3}};
  rng.fill_uniform(img, -1.0f, 1.0f);
  std::vector<float> cols(2 * 9);
  im2col(img.data(), 3, 3, g, cols.data());
  for (index_t i = 0; i < 18; ++i) EXPECT_FLOAT_EQ(cols[i], img[i]);
}

TEST(Im2col, ExtractsCorrectPatch) {
  // 1 channel, 3x3 image, 3x3 kernel, pad 1: center column (index 4) is
  // the full image; corner column 0 has zeros where padding applies.
  const ConvGeometry g{1, 3, 1, 1};
  Tensor img{Shape{1, 3, 3}};
  for (index_t i = 0; i < 9; ++i) img[i] = static_cast<float>(i + 1);
  std::vector<float> cols(9 * 9);
  im2col(img.data(), 3, 3, g, cols.data());
  // Column 4 = patch centered at (1,1) = [1..9] in row-major kernel order.
  for (index_t r = 0; r < 9; ++r)
    EXPECT_FLOAT_EQ(cols[r * 9 + 4], static_cast<float>(r + 1));
  // Column 0 = patch centered at (0,0): rows touching padding are zero.
  EXPECT_FLOAT_EQ(cols[0 * 9 + 0], 0.0f);  // (ky=0,kx=0) off-image
  EXPECT_FLOAT_EQ(cols[4 * 9 + 0], 1.0f);  // (ky=1,kx=1) = pixel (0,0)
  EXPECT_FLOAT_EQ(cols[8 * 9 + 0], 5.0f);  // (ky=2,kx=2) = pixel (1,1)
}

TEST(Im2col, StrideSkipsPositions) {
  const ConvGeometry g{1, 2, 2, 0};
  Tensor img{Shape{1, 4, 4}};
  for (index_t i = 0; i < 16; ++i) img[i] = static_cast<float>(i);
  std::vector<float> cols(4 * 4);
  im2col(img.data(), 4, 4, g, cols.data());
  // Output positions: (0,0),(0,2),(2,0),(2,2); row 0 is kernel (0,0).
  EXPECT_FLOAT_EQ(cols[0 * 4 + 0], 0.0f);
  EXPECT_FLOAT_EQ(cols[0 * 4 + 1], 2.0f);
  EXPECT_FLOAT_EQ(cols[0 * 4 + 2], 8.0f);
  EXPECT_FLOAT_EQ(cols[0 * 4 + 3], 10.0f);
}

// The adjoint property <im2col(x), y> == <x, col2im(y)> must hold exactly
// for the conv backward pass to be correct.
class Im2colAdjoint
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(Im2colAdjoint, AdjointProperty) {
  const auto [channels, size, kernel, stride] = GetParam();
  const index_t pad = kernel / 2;
  const ConvGeometry g{channels, kernel, stride, pad};
  const index_t oh = g.out_extent(size);
  const index_t n_cols = oh * oh;
  const index_t patch = g.patch_size();

  Rng rng(42);
  Tensor x{Shape{channels, size, size}};
  rng.fill_uniform(x, -1.0f, 1.0f);
  std::vector<float> y(static_cast<std::size_t>(patch * n_cols));
  for (auto& v : y) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  im2col(x.data(), size, size, g, cols.data());
  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.size(); ++i)
    lhs += static_cast<double>(cols[i]) * y[i];

  Tensor xg{Shape{channels, size, size}};
  col2im(y.data(), size, size, g, xg.data());
  double rhs = 0.0;
  for (index_t i = 0; i < x.numel(); ++i)
    rhs += static_cast<double>(x[i]) * xg[i];

  EXPECT_NEAR(lhs, rhs, 1e-3 * (1.0 + std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Im2colAdjoint,
    ::testing::Values(std::tuple{1, 5, 3, 1}, std::tuple{3, 8, 3, 1},
                      std::tuple{3, 8, 3, 2}, std::tuple{2, 6, 1, 1},
                      std::tuple{4, 7, 5, 1}, std::tuple{2, 9, 3, 3}));

}  // namespace
}  // namespace qdnn::nn
