// Token embedding lookup: ids [N, T] (stored as floats holding integral
// values) -> [N, T, D].  Shared between the Transformer encoder/decoder
// and tied (optionally) with the output projection, as in the paper's
// Table II baseline configuration.
#pragma once

#include "nn/init.h"
#include "nn/module.h"

namespace qdnn::nn {

class Embedding : public Module {
 public:
  Embedding(index_t vocab_size, index_t dim, Rng& rng,
            std::string name = "embed");

  Tensor forward(const Tensor& ids) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override {
    QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, T] ids");
    return Shape{input_shape[0], input_shape[1], dim_};
  }
  // v2: pure gather — allocation-free and shard-safe.
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& ids, const TensorView& output,
                    Workspace& ws) override;
  // Freeze is a packing no-op: the gather reads weight rows directly, so
  // there is no constant GEMM operand to materialize (and nothing goes
  // stale on unfreeze).  Only the training id cache is released, per the
  // stale-scratch audit of the serving lifecycle.
  void freeze() override {
    cached_ids_ = Tensor{};
    Module::freeze();
  }
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

  Parameter& weight() { return weight_; }
  index_t vocab_size() const { return vocab_size_; }
  index_t dim() const { return dim_; }

 private:
  index_t vocab_size_;
  index_t dim_;
  std::string name_;
  Parameter weight_;  // [V, D]
  Tensor cached_ids_;
};

}  // namespace qdnn::nn
