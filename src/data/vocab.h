// Vocabulary with reserved special tokens, shared by the synthetic
// translation corpus and the Transformer benches.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/shape.h"

namespace qdnn::data {

class Vocab {
 public:
  // Special ids are fixed so models/losses can rely on them.
  static constexpr index_t kPad = 0;
  static constexpr index_t kBos = 1;
  static constexpr index_t kEos = 2;
  static constexpr index_t kUnk = 3;

  Vocab();

  // Adds a word if absent; returns its id either way.
  index_t add(const std::string& word);
  // Id lookup; kUnk for unknown words.
  index_t id(const std::string& word) const;
  const std::string& word(index_t id) const;
  index_t size() const { return static_cast<index_t>(words_.size()); }

  std::vector<index_t> encode(const std::vector<std::string>& tokens) const;
  std::vector<std::string> decode(const std::vector<index_t>& ids) const;

 private:
  std::vector<std::string> words_;
  std::unordered_map<std::string, index_t> index_;
};

}  // namespace qdnn::data
