#include "train/metrics.h"

namespace qdnn::train {

double accuracy(const Tensor& logits, const std::vector<index_t>& labels) {
  QDNN_CHECK_EQ(logits.rank(), 2, "accuracy: logits must be [N, C]");
  const index_t n = logits.dim(0), c = logits.dim(1);
  QDNN_CHECK_EQ(static_cast<index_t>(labels.size()), n,
                "accuracy: label count");
  index_t correct = 0;
  for (index_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    index_t best = 0;
    for (index_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    if (best == labels[static_cast<std::size_t>(i)]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(n);
}

}  // namespace qdnn::train
