// Seq2seq trainer for the Transformer (Table II).  Teacher forcing with
// label smoothing 0.1 and padding-ignoring cross-entropy; warmup +
// inverse-sqrt schedule; BLEU evaluation via greedy decoding under the
// four Table II settings (13a/international × cased/uncased).
#pragma once

#include "data/bleu.h"
#include "data/tokenizer.h"
#include "data/translation.h"
#include "models/transformer/transformer.h"
#include "nn/loss.h"
#include "train/metrics.h"
#include "train/scheduler.h"

namespace qdnn::train {

struct Seq2SeqConfig {
  index_t epochs = 8;
  index_t batch_size = 32;
  // Adam + warmup/inverse-sqrt, the Vaswani et al. recipe the paper
  // follows for its Transformer experiments.
  float peak_lr = 2e-3f;
  index_t warmup_steps = 100;
  float label_smoothing = 0.1f;
  float clip_norm = 1.0f;
  std::uint64_t seed = 5;
};

struct BleuSettings {
  data::TokenizerKind tokenizer = data::TokenizerKind::k13a;
  bool cased = true;
};

struct Seq2SeqEpoch {
  index_t epoch = 0;
  double train_loss = 0.0;
  double token_accuracy = 0.0;
};

class Seq2SeqTrainer {
 public:
  Seq2SeqTrainer(models::Transformer& model, Seq2SeqConfig config);

  std::vector<Seq2SeqEpoch> fit(const data::TranslationCorpus& corpus);

  // Greedy-decodes the test split and scores BLEU under one setting.
  data::BleuResult evaluate_bleu(const data::TranslationCorpus& corpus,
                                 const BleuSettings& settings,
                                 index_t max_sentences = 0);

  std::function<void(const Seq2SeqEpoch&)> on_epoch;

 private:
  models::Transformer* model_;
  Seq2SeqConfig config_;
  Adam optimizer_;
  WarmupInvSqrt scheduler_;
  Rng rng_;
  nn::CrossEntropyLoss loss_;
};

}  // namespace qdnn::train
