// Example: distilling a general quadratic layer into the proposed form —
// the paper's Sec. III-A construction run as a tool.
//
//  1. Train a small model whose hidden layer is a *general* quadratic
//     layer (full n×n matrix per unit, [17]).
//  2. Convert it with Lemma 1 + eigendecomposition + top-k truncation
//     (Eckart–Young-optimal) at several ranks.
//  3. Report parameter savings, approximation error, and how much
//     accuracy each rank retains WITHOUT retraining.
//
// Run: ./build/examples/convert_general
#include <cstdio>

#include "nn/activations.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "quadratic/convert.h"
#include "train/sgd.h"

using namespace qdnn;
using quadratic::GeneralQuadraticDense;

namespace {

// Second-order classification task: class = quadrant parity of a random
// projection, so the quadratic layer genuinely uses its matrix.
void make_data(index_t count, std::uint64_t seed, Tensor* x,
               std::vector<index_t>* y) {
  Rng rng(seed);
  *x = Tensor{Shape{count, 6}};
  y->resize(static_cast<std::size_t>(count));
  for (index_t i = 0; i < count; ++i) {
    float prod = 1.0f;
    for (index_t j = 0; j < 6; ++j) {
      const float v = static_cast<float>(rng.uniform(-1.0, 1.0));
      x->at(i, j) = v;
      if (j < 2) prod *= v;
    }
    (*y)[static_cast<std::size_t>(i)] = prod > 0 ? 1 : 0;
  }
}

}  // namespace

int main() {
  Tensor train_x, test_x;
  std::vector<index_t> train_y, test_y;
  make_data(600, 1, &train_x, &train_y);
  make_data(300, 2, &test_x, &test_y);

  // --- 1. Train the general-quadratic model ------------------------------
  Rng rng(5);
  GeneralQuadraticDense quad_layer(6, 4, rng, /*include_linear=*/true,
                                   "general");
  nn::ReLU relu;
  nn::Linear head(4, 2, rng, true, "head");

  std::vector<nn::Parameter*> params = quad_layer.parameters();
  for (nn::Parameter* p : head.parameters()) params.push_back(p);
  train::Sgd opt(params, {0.05f, 0.9f, 1e-4f});
  nn::CrossEntropyLoss loss;

  auto evaluate = [&](nn::Module& hidden) {
    const Tensor h = head.forward(relu.forward(hidden.forward(test_x)));
    const nn::LossResult res = loss(h, test_y);
    return static_cast<double>(res.correct) / test_y.size();
  };

  for (int epoch = 0; epoch < 80; ++epoch) {
    opt.zero_grad();
    const Tensor h = head.forward(relu.forward(quad_layer.forward(train_x)));
    const nn::LossResult res = loss(h, train_y);
    quad_layer.backward(relu.backward(head.backward(res.grad_logits)));
    opt.step();
  }
  const double general_acc = evaluate(quad_layer);
  std::printf("general quadratic layer: %lld params, test acc %.1f%%\n",
              static_cast<long long>(quad_layer.num_parameters()),
              100 * general_acc);

  // --- 2./3. Convert at several ranks ------------------------------------
  std::printf("\n%-6s %-10s %-14s %-12s %-10s\n", "rank", "params",
              "mean |M-Mk|_F", "energy kept", "test acc");
  for (index_t k : {1, 2, 3, 6}) {
    Rng conv_rng(9);
    std::vector<double> errors;
    auto converted =
        quadratic::convert_layer(quad_layer, k, conv_rng, &errors);
    double mean_err = 0.0, mean_energy = 0.0;
    for (index_t u = 0; u < 4; ++u) {
      Tensor m{Shape{6, 6}};
      for (index_t i = 0; i < 36; ++i)
        m[i] = quad_layer.m().value[u * 36 + i];
      const auto conv = quadratic::convert_matrix(m, k);
      mean_err += conv.error / 4.0;
      mean_energy += conv.energy_kept / 4.0;
    }
    // The converted layer emits {y, fᵏ} per unit; the head only consumes
    // the y channels, so evaluate through a thin adapter.
    const Tensor all = converted->forward(test_x);
    Tensor y_only{Shape{test_x.dim(0), 4}};
    for (index_t s = 0; s < test_x.dim(0); ++s)
      for (index_t u = 0; u < 4; ++u)
        y_only.at(s, u) = all.at(s, u * (k + 1));
    const Tensor logits = head.forward(relu.forward(y_only));
    const nn::LossResult res = loss(logits, test_y);
    const double acc = static_cast<double>(res.correct) / test_y.size();
    std::printf("%-6lld %-10lld %-14.4f %-12.3f %.1f%%\n",
                static_cast<long long>(k),
                static_cast<long long>(converted->num_parameters()),
                mean_err, mean_energy, 100 * acc);
  }
  std::printf(
      "\nAt full rank the conversion is exact (identical accuracy); at\n"
      "k=2-3 the layer keeps ~90%% of the spectral energy and its full\n"
      "accuracy at roughly half the parameters — and for large fan-in\n"
      "(conv layers, n = C·K²) the savings grow like n²/(k+1)n.  The k\n"
      "extra feature channels per unit are then available to downstream\n"
      "layers for free.\n");
  return 0;
}
