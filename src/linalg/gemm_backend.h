// The gemm backend seam: every dense kernel in the library (gemm,
// gemm_prepacked, dot, axpy) routes through one selected backend.
//
// Selection is two-staged:
//   * compile time — the CMake option QDNN_SIMD=auto|avx2|neon|generic
//     decides which hand-written microkernels are built into the binary
//     (the AVX2/FMA translation unit is compiled with -mavx2 -mfma; the
//     NEON one only on aarch64);
//   * runtime — the first dispatch resolves the best compiled-in backend
//     the CPU actually supports (CPUID), falling back to the portable
//     generic kernel, and honors the QDNN_GEMM_BACKEND=generic|avx2|neon
//     environment override.  set_gemm_backend() narrows the choice for
//     tests and A/B benches.
//
// Numerics contract: results are deterministic *within* a backend — the
// per-row reduction order is fixed, independent of m, of batch position,
// of prepacked vs per-call packing, and of the threaded row sharding —
// so every bit-identity regression in the repo (decode vs reference,
// async vs sync prefill, N-shard vs solo) holds under whichever backend
// is active.  *Across* backends results differ by FMA reassociation and
// are compared under tolerance (tests/linalg/gemm_backend_test.cpp).
//
// Threading: a small persistent pool in linalg row-shards large gemms
// (opt-in: threads default to 1; QDNN_GEMM_THREADS=N or
// set_gemm_threads).  A call is sharded only when 2·m·n·k >= the
// min-work threshold and no GemmSerialScope is active on the calling
// thread — PrefillPool and InferenceSession shard workers hold one so
// nested pools never oversubscribe.  Row sharding is bit-identical to
// the single-threaded kernel by construction (rows are independent).
#pragma once

#include "core/tensor.h"

namespace qdnn::linalg {

enum class GemmBackend { kGeneric = 0, kAvx2 = 1, kNeon = 2 };

// Human-readable name ("generic", "avx2", "neon").
const char* gemm_backend_name(GemmBackend backend);

// True when the backend's kernels were compiled into this binary.
bool gemm_backend_compiled(GemmBackend backend);

// True when compiled AND the running CPU can execute them.
bool gemm_backend_supported(GemmBackend backend);

// The backend every dense kernel currently dispatches to.
GemmBackend active_gemm_backend();

// Overrides the active backend (tests / A-B benches).  Throws when the
// backend is not supported on this build+CPU.  Packs made before the
// switch keep working: each PackedWeights carries the backend that laid
// it out and gemm_prepacked dispatches on that tag.
void set_gemm_backend(GemmBackend backend);

// --------------------------------------------------------------------
// Row-sharded threaded path.
// --------------------------------------------------------------------

// Current worker budget for one gemm call (1 = always inline).
int gemm_threads();

// Sets the worker budget and eagerly spins up the persistent pool so no
// thread creation happens inside a steady-state call.  Initial value
// comes from QDNN_GEMM_THREADS (default 1).
void set_gemm_threads(int threads);

// A call threads only when 2*m*n*k >= this threshold (flops).  Initial
// value comes from QDNN_GEMM_MIN_WORK (default 2'000'000).
long long gemm_thread_min_work();
void set_gemm_thread_min_work(long long flops);

// While alive on a thread, gemm calls from that thread never enter the
// pool (they run the plain inline kernel).  Held by PrefillPool workers
// and InferenceSession shard workers: those threads are already one
// lane of an outer parallelism level.
class GemmSerialScope {
 public:
  GemmSerialScope();
  ~GemmSerialScope();
  GemmSerialScope(const GemmSerialScope&) = delete;
  GemmSerialScope& operator=(const GemmSerialScope&) = delete;
};

// --------------------------------------------------------------------
// Introspection counters (monotonic, process-wide).
// --------------------------------------------------------------------

// Calls that took the scratch-allocating gemm() convenience overload
// (one std::vector per call).  Steady-state serving paths must never
// bump this — asserted by tests/runtime/session_test.cpp.
long long gemm_heap_pack_calls();

// Calls that actually row-sharded across the pool.
long long gemm_threaded_dispatches();

}  // namespace qdnn::linalg
