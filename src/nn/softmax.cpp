#include "nn/softmax.h"

#include <cmath>

namespace qdnn::nn {

void softmax_rows(float* data, index_t rows, index_t cols) {
  for (index_t r = 0; r < rows; ++r) {
    float* row = data + r * cols;
    float mx = row[0];
    for (index_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
    float sum = 0.0f;
    for (index_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (index_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

void softmax_backward_rows(const float* y, float* g, index_t rows,
                           index_t cols) {
  for (index_t r = 0; r < rows; ++r) {
    const float* yr = y + r * cols;
    float* gr = g + r * cols;
    float dotv = 0.0f;
    for (index_t c = 0; c < cols; ++c) dotv += yr[c] * gr[c];
    for (index_t c = 0; c < cols; ++c) gr[c] = yr[c] * (gr[c] - dotv);
  }
}

Tensor Softmax::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, C]");
  Tensor out = input;
  softmax_rows(out.data(), out.dim(0), out.dim(1));
  cached_output_ = out;
  return out;
}

void Softmax::forward_into(const ConstTensorView& input, const TensorView& output,
                           Workspace&) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, C]");
  QDNN_CHECK(input.shape() == output.shape(),
             name_ << ": forward_into shape mismatch " << input.shape()
                   << " vs " << output.shape());
  std::memcpy(output.data(), input.data(),
              static_cast<std::size_t>(input.numel()) * sizeof(float));
  softmax_rows(output.data(), output.dim(0), output.dim(1));
}

Tensor Softmax::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_output_.empty(), name_ << ": backward before forward");
  Tensor grad = grad_output;
  softmax_backward_rows(cached_output_.data(), grad.data(), grad.dim(0),
                        grad.dim(1));
  return grad;
}

}  // namespace qdnn::nn
