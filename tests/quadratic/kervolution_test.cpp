#include "quadratic/kervolution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck_util.h"
#include "nn/linear.h"

namespace qdnn::quadratic {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

TEST(KervolutionDense, Degree1WithZeroCEqualsLinear) {
  Rng rng_a(1), rng_b(1);
  KervolutionDense kerv(4, 3, /*degree=*/1, /*c=*/0.0f, rng_a);
  nn::Linear linear(4, 3, rng_b, /*bias=*/false);
  const Tensor x = random_tensor(Shape{2, 4}, 2);
  EXPECT_LT(max_abs_diff(kerv.forward(x), linear.forward(x)), 1e-5f);
}

TEST(KervolutionDense, MatchesPolynomialKernel) {
  Rng rng(3);
  KervolutionDense kerv(3, 1, /*degree=*/2, /*c=*/0.5f, rng);
  const Tensor x = random_tensor(Shape{1, 3}, 4);
  double pre = 0.5;
  for (index_t j = 0; j < 3; ++j)
    pre += kerv.parameters()[0]->value[j] * x[j];
  EXPECT_NEAR(kerv.forward(x)[0], pre * pre, 1e-4f);
}

TEST(KervolutionDense, Gradcheck) {
  Rng rng(5);
  KervolutionDense kerv(4, 2, 2, 0.5f, rng);
  EXPECT_TRUE(gradcheck_module(kerv, random_tensor(Shape{2, 4}, 6)));
}

TEST(KervolutionDense, GradcheckDegree3) {
  Rng rng(7);
  KervolutionDense kerv(3, 2, 3, 0.25f, rng);
  EXPECT_TRUE(gradcheck_module(
      kerv, random_tensor(Shape{2, 3}, 8, -0.5f, 0.5f)));
}

TEST(KervolutionDense, SameParameterCountAsLinear) {
  Rng rng(9);
  KervolutionDense kerv(16, 8, 2, 0.5f, rng);
  EXPECT_EQ(kerv.num_parameters(), 16 * 8);
}

TEST(KervolutionConv2d, OutputShape) {
  Rng rng(10);
  KervolutionConv2d kerv(3, 4, 3, 1, 1, 2, 0.5f, rng);
  const Tensor y = kerv.forward(random_tensor(Shape{2, 3, 5, 5}, 11));
  EXPECT_EQ(y.shape(), Shape({2, 4, 5, 5}));
}

TEST(KervolutionConv2d, Gradcheck) {
  Rng rng(12);
  KervolutionConv2d kerv(2, 2, 3, 1, 1, 2, 0.5f, rng);
  EXPECT_TRUE(gradcheck_module(kerv, random_tensor(Shape{1, 2, 4, 4}, 13)));
}

// The property Fig. 6 exploits: the polynomial kernel amplifies
// activations multiplicatively, so stacking kervolution layers grows
// outputs/gradients as a power of the depth while a linear stack does not.
TEST(KervolutionConv2d, StackedAmplificationGrowsWithDepth) {
  Rng rng(14);
  const Tensor x = random_tensor(Shape{1, 2, 6, 6}, 15, 0.5f, 1.5f);
  auto amplification = [&](int depth) {
    Rng local(16);
    Tensor h = x;
    for (int d = 0; d < depth; ++d) {
      KervolutionConv2d layer(2, 2, 3, 1, 1, 2, 1.0f, local);
      h = layer.forward(h);
    }
    return static_cast<double>(h.abs_max());
  };
  const double a1 = amplification(1);
  const double a3 = amplification(3);
  EXPECT_GT(a3, 10.0 * a1);  // super-linear growth
}

TEST(Kervolution, RejectsDegreeZero) {
  Rng rng(17);
  EXPECT_THROW(KervolutionDense(3, 2, 0, 0.5f, rng), std::runtime_error);
  EXPECT_THROW(KervolutionConv2d(2, 2, 3, 1, 1, 0, 0.5f, rng),
               std::runtime_error);
}

}  // namespace
}  // namespace qdnn::quadratic
