#include "data/bleu.h"

#include <gtest/gtest.h>

#include <cmath>

#include "data/tokenizer.h"

namespace qdnn::data {
namespace {

std::vector<std::string> toks(std::initializer_list<const char*> words) {
  std::vector<std::string> out;
  for (const char* w : words) out.emplace_back(w);
  return out;
}

// ------------------------------ tokenizer ---------------------------------

TEST(Tokenizer, SplitsWhitespace) {
  const auto t = tokenize("hello world", TokenizerKind::k13a, true);
  EXPECT_EQ(t, toks({"hello", "world"}));
}

TEST(Tokenizer, ThirteenASplitsTerminalPunct) {
  const auto t = tokenize("Hello world.", TokenizerKind::k13a, true);
  EXPECT_EQ(t, toks({"Hello", "world", "."}));
}

TEST(Tokenizer, ThirteenAKeepsHyphens) {
  const auto t = tokenize("word3-part1 x", TokenizerKind::k13a, true);
  EXPECT_EQ(t, toks({"word3-part1", "x"}));
}

TEST(Tokenizer, InternationalSplitsHyphens) {
  const auto t =
      tokenize("word3-part1 x", TokenizerKind::kInternational, true);
  EXPECT_EQ(t, toks({"word3", "-", "part1", "x"}));
}

TEST(Tokenizer, UncasedLowercases) {
  const auto t = tokenize("Hello World.", TokenizerKind::k13a, false);
  EXPECT_EQ(t, toks({"hello", "world", "."}));
}

TEST(Tokenizer, EmptyString) {
  EXPECT_TRUE(tokenize("", TokenizerKind::k13a, true).empty());
}

TEST(Tokenizer, MultiplePunctuationMarks) {
  const auto t = tokenize("a,b.c!", TokenizerKind::k13a, true);
  EXPECT_EQ(t, toks({"a", ",", "b", ".", "c", "!"}));
}

// -------------------------------- BLEU ------------------------------------

TEST(Bleu, PerfectMatchIs100) {
  const auto s = toks({"the", "cat", "sat", "on", "the", "mat"});
  const BleuResult r = corpus_bleu({s}, {s});
  EXPECT_NEAR(r.bleu, 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(r.brevity_penalty, 1.0);
}

TEST(Bleu, CompletelyWrongIsNearZero) {
  const auto hyp = toks({"a", "b", "c", "d", "e"});
  const auto ref = toks({"v", "w", "x", "y", "z"});
  const BleuResult r = corpus_bleu({hyp}, {ref});
  EXPECT_LT(r.bleu, 1.0);
}

TEST(Bleu, BrevityPenaltyAppliesToShortHyp) {
  const auto ref = toks({"a", "b", "c", "d", "e", "f", "g", "h"});
  const auto hyp = toks({"a", "b", "c", "d"});
  const BleuResult r = corpus_bleu({hyp}, {ref});
  EXPECT_LT(r.brevity_penalty, 1.0);
  EXPECT_NEAR(r.brevity_penalty, std::exp(1.0 - 8.0 / 4.0), 1e-9);
}

TEST(Bleu, NoPenaltyForLongHyp) {
  const auto ref = toks({"a", "b", "c", "d"});
  const auto hyp = toks({"a", "b", "c", "d", "e", "f"});
  const BleuResult r = corpus_bleu({hyp}, {ref});
  EXPECT_DOUBLE_EQ(r.brevity_penalty, 1.0);
}

TEST(Bleu, ClippedPrecision) {
  // "the the the" against "the cat": unigram matches clip at ref count.
  const auto hyp = toks({"the", "the", "the", "the"});
  const auto ref = toks({"the", "cat", "ate", "the"});
  const BleuResult r = corpus_bleu({hyp}, {ref});
  EXPECT_NEAR(r.precisions[0], 50.0, 1e-6);  // 2 of 4 after clipping
}

TEST(Bleu, PartialOverlapOrdering) {
  const auto ref = toks({"the", "quick", "brown", "fox", "jumps"});
  const auto close = toks({"the", "quick", "brown", "fox", "runs"});
  const auto far = toks({"the", "fox", "quick", "runs", "brown"});
  const double b_close = corpus_bleu({close}, {ref}).bleu;
  const double b_far = corpus_bleu({far}, {ref}).bleu;
  EXPECT_GT(b_close, b_far);  // word order matters through n-grams
}

TEST(Bleu, CorpusAggregatesOverSentences) {
  const auto ref1 = toks({"a", "b", "c", "d"});
  const auto ref2 = toks({"e", "f", "g", "h"});
  const BleuResult r = corpus_bleu({ref1, ref2}, {ref1, ref2});
  EXPECT_NEAR(r.bleu, 100.0, 1e-6);
  EXPECT_EQ(r.hyp_length, 8);
}

TEST(Bleu, MismatchedSizesThrow) {
  EXPECT_THROW(corpus_bleu({toks({"a"})}, {}), std::runtime_error);
}

TEST(Bleu, CasedVsUncasedDiffer) {
  // With case-sensitive tokens, "Word1" ≠ "word1"; uncased merges them.
  const std::string ref_text = "Word1 stays here.";
  const std::string hyp_text = "word1 stays here.";
  const auto cased_hyp = tokenize(hyp_text, TokenizerKind::k13a, true);
  const auto cased_ref = tokenize(ref_text, TokenizerKind::k13a, true);
  const auto uncased_hyp = tokenize(hyp_text, TokenizerKind::k13a, false);
  const auto uncased_ref = tokenize(ref_text, TokenizerKind::k13a, false);
  EXPECT_LT(corpus_bleu({cased_hyp}, {cased_ref}).bleu,
            corpus_bleu({uncased_hyp}, {uncased_ref}).bleu);
}

TEST(Bleu, TokenizerChangesScoreOnHyphens) {
  // A hypothesis that gets the compound partially right scores differently
  // under 13a (one token, no credit) vs international (splits, partial
  // credit).
  const std::string ref_text = "word3-part1 goes fast.";
  const std::string hyp_text = "word3-part2 goes fast.";
  const double b13 =
      corpus_bleu({tokenize(hyp_text, TokenizerKind::k13a, true)},
                  {tokenize(ref_text, TokenizerKind::k13a, true)})
          .bleu;
  const double bint = corpus_bleu(
                          {tokenize(hyp_text, TokenizerKind::kInternational,
                                    true)},
                          {tokenize(ref_text, TokenizerKind::kInternational,
                                    true)})
                          .bleu;
  EXPECT_NE(b13, bint);
}

}  // namespace
}  // namespace qdnn::data
