// Fig. 7 reproduction: distribution of linear vs quadratic parameters
// per layer of a trained quadratic ResNet-20 on CIFAR-100.
//
// The paper's observation: quadratic parameters (Λᵏ) have strongly
// depth-dependent spread — pronounced in some layers (1, 6, 8 in the
// paper) and collapsed toward zero in others (11, 13, 19) — while linear
// parameters keep a similar spread everywhere.  Conclusion: quadratic
// neurons are not equally useful at every depth, but first-layer-only
// deployment is also not optimal.
//
// Substrate: synthetic CIFAR-100 substitute at reduced scale; the bench
// prints per-layer [q05, q95] ranges for both groups and the dispersion
// statistic the claim rests on.
#include <cstdio>

#include <algorithm>
#include <cmath>

#include "analysis/param_stats.h"
#include "bench_util.h"
#include "models/resnet.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header("Fig 7: parameter distributions, quadratic ResNet-20");

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 20;  // CIFAR-100 substitute, scaled classes
  data_config.image_size = 16;
  data_config.noise_std = 0.6f;
  data_config.shape_amp = 0.3f;
  const auto train_set =
      data::make_synthetic_images(data_config, 800 * scale, 51);
  const auto test_set =
      data::make_synthetic_images(data_config, 200 * scale, 52);

  ResNetConfig config;
  config.depth = 20;
  config.num_classes = 20;
  config.image_size = 16;
  config.base_width = 8;
  // The paper trains this experiment for 180-250 epochs at lambda lr
  // 1e-4 against base 0.1 (scale 1e-3).  Our scaled runs take ~25x
  // fewer steps, so lambda's lr scale is raised to keep the total
  // lambda learning (lr x steps) comparable -- without this the
  // quadratic parameters stay at their init and the analysis reads
  // initialization noise instead of trained structure.
  config.spec = NeuronSpec::proposed(9, /*lambda_lr=*/1.0f);
  config.seed = 13;
  auto net = make_cifar_resnet(config);
  // The paper's Fig. 7 shows unused layers' lambdas collapsing toward
  // zero, which requires weight decay to act on them; qdnn's layers opt
  // lambda out of decay by default (the conservative training choice), so
  // this analysis opts it back in — matching the paper's recipe, where
  // the global 5e-4 decay applies to every parameter.
  for (nn::Parameter* p : net->parameters())
    if (p->group == "quadratic_lambda") p->decay = true;

  train::TrainerConfig tc;
  tc.epochs = 18 * scale;
  tc.batch_size = 64;  // the paper trains this experiment at batch 64
  tc.lr = 0.05f;
  tc.clip_norm = 5.0f;
  tc.lr_milestones = {index_t(13 * scale)};
  tc.augment_pad = 2;
  train::Trainer trainer(*net, tc);
  const auto history = trainer.fit(train_set, test_set);
  std::printf("trained %zu epochs, final test acc %.2f%%\n\n",
              history.size(),
              100 * history.back().test_accuracy);

  const auto stats = analysis::per_layer_stats(net->conv_layers());
  CsvWriter csv(qdnn::bench::results_dir() + "/fig7_param_stats.csv",
                {"layer", "group", "count", "min", "max", "mean", "stddev",
                 "q05", "q95"});
  print_row({"layer", "group", "q05", "q95", "stddev"});
  print_rule();
  std::vector<double> lambda_spread, linear_spread;
  for (const auto& s : stats) {
    csv.write_row(std::vector<std::string>{
        s.layer, s.group, std::to_string(s.count), fmt(s.min, 5),
        fmt(s.max, 5), fmt(s.mean, 5), fmt(s.stddev, 5), fmt(s.q05, 5),
        fmt(s.q95, 5)});
    if (s.group == "quadratic_lambda" || s.group == "linear")
      print_row({s.layer, s.group, fmt(s.q05, 4), fmt(s.q95, 4),
                 fmt(s.stddev, 4)});
    if (s.group == "quadratic_lambda")
      lambda_spread.push_back(s.q95 - s.q05);
    if (s.group == "linear") linear_spread.push_back(s.q95 - s.q05);
  }

  // Dispersion-of-spread statistic: coefficient of variation of the
  // per-layer spread.  The paper's claim is that this is much larger for
  // the quadratic parameters than the linear ones.
  auto coeff_var = [](const std::vector<double>& v) {
    double mean = 0.0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double var = 0.0;
    for (double x : v) var += (x - mean) * (x - mean);
    var /= static_cast<double>(v.size());
    return mean > 0 ? std::sqrt(var) / mean : 0.0;
  };
  const double cv_lambda = coeff_var(lambda_spread);
  const double cv_linear = coeff_var(linear_spread);
  std::printf(
      "\nSpread variability across depth (coeff. of variation of "
      "q95-q05):\n  quadratic (lambda): %.3f\n  linear (w):         %.3f\n"
      "Expected shape (paper): quadratic >> linear — quadratic parameters\n"
      "matter a lot in some layers and collapse toward zero in others.\n"
      "%s\n",
      cv_lambda, cv_linear,
      cv_lambda > cv_linear ? "[shape HOLDS]" : "[shape DOES NOT HOLD]");
  return 0;
}
