// Shared helpers for the table/figure reproduction benches.
//
// Every bench prints a paper-vs-measured table to stdout and mirrors its
// rows to bench_results/<name>.csv.  QDNN_BENCH_SCALE (default 1) scales
// dataset sizes and epochs up for longer, higher-fidelity runs; the
// default is sized for a single CPU core.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/io.h"

namespace qdnn::bench {

inline int bench_scale() {
  const char* env = std::getenv("QDNN_BENCH_SCALE");
  if (!env) return 1;
  const int v = std::atoi(env);
  return v > 0 ? v : 1;
}

inline void print_header(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void print_rule() {
  std::printf(
      "-----------------------------------------------------------------"
      "-----------\n");
}

// Fixed-width row printing: columns are padded to 14 chars.
inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-16s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

inline std::string fmt_pct(double v, int decimals = 1) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f%%", decimals, v);
  return buf;
}

inline std::string results_dir() { return "bench_results"; }

}  // namespace qdnn::bench
