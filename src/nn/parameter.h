// Parameter: a trainable tensor with its gradient and optimizer metadata.
//
// `lr_scale` implements the paper's per-group learning rates: the
// eigenvalue vector Λᵏ of the proposed neuron trains at 1e-4…1e-6 while
// the base LR is 0.1 (Sec. IV-A/IV-B), so Λ parameters carry
// lr_scale = lr_Λ / lr_base and a single optimizer drives both groups.
#pragma once

#include <string>

#include "core/tensor.h"

namespace qdnn::nn {

struct Parameter {
  Parameter() = default;
  Parameter(std::string name_in, Tensor value_in)
      : name(std::move(name_in)),
        value(std::move(value_in)),
        grad(value.shape()) {}

  std::string name;
  Tensor value;
  Tensor grad;
  // Multiplies the optimizer's base learning rate for this parameter.
  float lr_scale = 1.0f;
  // Whether weight decay applies (biases and norms usually opt out).
  bool decay = true;
  // Analysis group: "linear" (w, biases, norms), "quadratic_q" (Qᵏ and
  // other second-order weight factors) or "quadratic_lambda" (Λᵏ).  The
  // Fig. 7 parameter-distribution experiment keys off this tag.
  std::string group = "linear";

  void zero_grad() { grad.zero(); }
  index_t numel() const { return value.numel(); }
};

}  // namespace qdnn::nn
