// Integer convolution inference (QuantizedConv2d / QuantizedProposedConv2d)
// must agree with the float layers within quantization error, preserve the
// channel layout, and handle zero padding exactly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "quantize/quantized_modules.h"

namespace qdnn::quantize {
namespace {

Tensor random_images(index_t n, index_t c, index_t hw, Rng& rng,
                     float stddev = 1.0f) {
  Tensor t{Shape{n, c, hw, hw}};
  rng.fill_normal(t, 0.0f, stddev);
  return t;
}

// Relative RMSE between two tensors.
double rel_rmse(const Tensor& ref, const Tensor& got) {
  double err2 = 0.0, ref2 = 0.0;
  for (index_t i = 0; i < ref.numel(); ++i) {
    const double d = got[i] - ref[i];
    err2 += d * d;
    ref2 += static_cast<double>(ref[i]) * ref[i];
  }
  return std::sqrt(err2 / (ref2 + 1e-30));
}

// ---------------------------------------------------------------------------
// QuantizedConv2d
// ---------------------------------------------------------------------------

TEST(QuantizedConv2d, MatchesFloatWithinBound) {
  Rng rng(21);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng, /*bias=*/true);
  const Tensor sample = random_images(8, 3, 8, rng);
  QuantizedConv2d qconv(conv, sample, 8);

  const Tensor x = random_images(2, 3, 8, rng);
  conv.set_training(false);
  const Tensor y_float = conv.forward(x);
  const Tensor y_int8 = qconv.forward(x);
  ASSERT_EQ(y_int8.shape(), y_float.shape());
  EXPECT_LT(rel_rmse(y_float, y_int8), 0.05);
}

TEST(QuantizedConv2d, ZeroPaddingIsExactZeroCode) {
  // A zero input image through a bias-free conv must give exactly zero —
  // the symmetric grid maps padding zeros to code 0.
  Rng rng(22);
  nn::Conv2d conv(2, 4, 3, 1, 1, rng, /*bias=*/false);
  const Tensor sample = random_images(4, 2, 6, rng);
  QuantizedConv2d qconv(conv, sample, 8);
  Tensor zero{Shape{1, 2, 6, 6}};
  const Tensor y = qconv.forward(zero);
  for (index_t i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 0.0f);
}

TEST(QuantizedConv2d, StrideAndShapePropagate) {
  Rng rng(23);
  nn::Conv2d conv(3, 6, 3, 2, 1, rng);
  const Tensor sample = random_images(2, 3, 8, rng);
  QuantizedConv2d qconv(conv, sample, 8);
  const Tensor x = random_images(1, 3, 8, rng);
  EXPECT_EQ(qconv.forward(x).shape(), Shape({1, 6, 4, 4}));
}

TEST(QuantizedConv2d, BackwardIsCheckedError) {
  Rng rng(24);
  nn::Conv2d conv(1, 2, 3, 1, 1, rng);
  const Tensor sample = random_images(1, 1, 4, rng);
  QuantizedConv2d qconv(conv, sample, 8);
  Tensor g{Shape{1, 2, 4, 4}};
  EXPECT_THROW(qconv.backward(g), std::runtime_error);
}

// ---------------------------------------------------------------------------
// QuantizedProposedConv2d
// ---------------------------------------------------------------------------

TEST(QuantizedProposedConv2d, MatchesFloatWithinBound) {
  Rng rng(25);
  quadratic::ProposedQuadConv2d conv(3, 2, 3, 1, 1, /*rank=*/4, rng);
  const Tensor sample = random_images(8, 3, 8, rng);
  QuantizedProposedConv2d qconv(conv, sample, 8);

  const Tensor x = random_images(2, 3, 8, rng);
  conv.set_training(false);
  const Tensor y_float = conv.forward(x);
  const Tensor y_int8 = qconv.forward(x);
  ASSERT_EQ(y_int8.shape(), y_float.shape());
  EXPECT_LT(rel_rmse(y_float, y_int8), 0.06);
}

TEST(QuantizedProposedConv2d, ChannelLayoutMatchesFloatLayer) {
  // The y/f interleaving must match ProposedQuadConv2d: channel f·(k+1)
  // is the quadratic output, the next k channels are its features.
  Rng rng(26);
  quadratic::ProposedQuadConv2d conv(2, 2, 3, 1, 1, 3, rng);
  const Tensor sample = random_images(4, 2, 6, rng);
  QuantizedProposedConv2d qconv(conv, sample, 8);
  EXPECT_EQ(qconv.out_channels(), conv.out_channels());

  const Tensor x = random_images(1, 2, 6, rng);
  conv.set_training(false);
  const Tensor yf = conv.forward(x);
  const Tensor yq = qconv.forward(x);
  // Feature channels should track closely (no squaring amplification).
  for (index_t f = 0; f < 2; ++f)
    for (index_t i = 1; i <= 3; ++i) {
      const index_t ch = f * 4 + i;
      double err = 0.0, ref = 0.0;
      for (index_t p = 0; p < 36; ++p) {
        const double d = yq.at(0, ch, p / 6, p % 6) -
                         yf.at(0, ch, p / 6, p % 6);
        err += d * d;
        ref += static_cast<double>(yf.at(0, ch, p / 6, p % 6)) *
               yf.at(0, ch, p / 6, p % 6);
      }
      EXPECT_LT(std::sqrt(err / (ref + 1e-30)), 0.05) << "channel " << ch;
    }
}

TEST(QuantizedProposedConv2d, SumOnlyVariantSupported) {
  Rng rng(27);
  quadratic::ProposedQuadConv2d conv(2, 3, 3, 1, 1, 4, rng, 1e-3f, "sum",
                                     /*emit_features=*/false);
  const Tensor sample = random_images(4, 2, 6, rng);
  QuantizedProposedConv2d qconv(conv, sample, 8);
  EXPECT_EQ(qconv.out_channels(), 3);
  const Tensor x = random_images(2, 2, 6, rng);
  conv.set_training(false);
  const Tensor yf = conv.forward(x);
  const Tensor yq = qconv.forward(x);
  ASSERT_EQ(yq.shape(), yf.shape());
  EXPECT_LT(rel_rmse(yf, yq), 0.06);
}

TEST(QuantizedProposedConv2d, StorageBeatsFloatByNearly4x) {
  Rng rng(28);
  quadratic::ProposedQuadConv2d conv(8, 4, 3, 1, 1, 9, rng);
  const Tensor sample = random_images(2, 8, 8, rng);
  QuantizedProposedConv2d qconv(conv, sample, 8);
  const index_t fp32 =
      (conv.w().value.numel() + conv.q().value.numel() +
       conv.lambda().value.numel()) * 4;
  EXPECT_LT(static_cast<double>(qconv.weight_storage_bytes()),
            0.30 * static_cast<double>(fp32));
}

// Bit-width sweep: int8 through int4 must degrade monotonically-ish; we
// assert only the weak ordering rmse(8) <= rmse(4) to stay robust.
class ConvBitsSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConvBitsSweep, ErrorBoundedPerBits) {
  const int bits = GetParam();
  Rng rng(29);
  quadratic::ProposedQuadConv2d conv(2, 2, 3, 1, 1, 3, rng);
  const Tensor sample = random_images(8, 2, 6, rng);
  QuantizedProposedConv2d qconv(conv, sample, bits);
  const Tensor x = random_images(2, 2, 6, rng);
  conv.set_training(false);
  const double err = rel_rmse(conv.forward(x), qconv.forward(x));
  // Error scales like 2^-bits; allow generous headroom.
  EXPECT_LT(err, 3.0 * std::pow(2.0, -bits) * 8.0) << "bits " << bits;
}

INSTANTIATE_TEST_SUITE_P(Bits, ConvBitsSweep, ::testing::Values(4, 5, 6, 7, 8));

}  // namespace
}  // namespace qdnn::quantize
