#include "nn/conv2d.h"

#include <gtest/gtest.h>

#include "gradcheck_util.h"

namespace qdnn::nn {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

// Direct convolution reference.
Tensor naive_conv(const Tensor& input, const Tensor& weight,
                  const Tensor& bias, const ConvGeometry& g,
                  index_t out_channels) {
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = g.out_extent(h), ow = g.out_extent(w);
  Tensor out{Shape{n, out_channels, oh, ow}};
  for (index_t s = 0; s < n; ++s)
    for (index_t oc = 0; oc < out_channels; ++oc)
      for (index_t oy = 0; oy < oh; ++oy)
        for (index_t ox = 0; ox < ow; ++ox) {
          double acc = bias.empty() ? 0.0 : bias[oc];
          index_t widx = 0;
          for (index_t c = 0; c < g.in_channels; ++c)
            for (index_t ky = 0; ky < g.kernel; ++ky)
              for (index_t kx = 0; kx < g.kernel; ++kx, ++widx) {
                const index_t iy = oy * g.stride + ky - g.padding;
                const index_t ix = ox * g.stride + kx - g.padding;
                if (iy < 0 || iy >= h || ix < 0 || ix >= w) continue;
                acc += static_cast<double>(
                           weight[oc * g.patch_size() + widx]) *
                       input.at(s, c, iy, ix);
              }
          out.at(s, oc, oy, ox) = static_cast<float>(acc);
        }
  return out;
}

TEST(Conv2d, OutputShapeSamePadding) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, 1, 1, rng);
  const Tensor out = conv.forward(random_tensor(Shape{2, 3, 6, 6}, 2));
  EXPECT_EQ(out.shape(), Shape({2, 8, 6, 6}));
}

TEST(Conv2d, OutputShapeStride2) {
  Rng rng(3);
  Conv2d conv(3, 4, 3, 2, 1, rng);
  const Tensor out = conv.forward(random_tensor(Shape{1, 3, 8, 8}, 4));
  EXPECT_EQ(out.shape(), Shape({1, 4, 4, 4}));
}

class Conv2dVsNaive
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {
};

TEST_P(Conv2dVsNaive, MatchesDirectConvolution) {
  const auto [in_ch, out_ch, size, kernel, stride] = GetParam();
  Rng rng(10);
  Conv2d conv(in_ch, out_ch, kernel, stride, kernel / 2, rng);
  const Tensor x = random_tensor(Shape{2, in_ch, size, size}, 11);
  const Tensor y = conv.forward(x);
  const Tensor ref =
      naive_conv(x, conv.weight().value,
                 conv.parameters().size() > 1
                     ? conv.parameters()[1]->value
                     : Tensor{},
                 conv.geometry(), out_ch);
  EXPECT_LT(max_abs_diff(y, ref), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Conv2dVsNaive,
    ::testing::Values(std::tuple{1, 1, 5, 3, 1}, std::tuple{3, 4, 6, 3, 1},
                      std::tuple{3, 2, 8, 3, 2}, std::tuple{2, 3, 5, 1, 1},
                      std::tuple{4, 2, 7, 5, 1},
                      std::tuple{2, 2, 9, 3, 3}));

TEST(Conv2d, Gradcheck) {
  Rng rng(20);
  Conv2d conv(2, 3, 3, 1, 1, rng);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{2, 2, 4, 4}, 21)));
}

TEST(Conv2d, GradcheckStride2NoBias) {
  Rng rng(22);
  Conv2d conv(2, 2, 3, 2, 1, rng, /*bias=*/false);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{1, 2, 6, 6}, 23)));
}

TEST(Conv2d, Gradcheck1x1) {
  Rng rng(24);
  Conv2d conv(3, 4, 1, 1, 0, rng);
  EXPECT_TRUE(gradcheck_module(conv, random_tensor(Shape{2, 3, 3, 3}, 25)));
}

TEST(Conv2d, WrongChannelCountThrows) {
  Rng rng(26);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  EXPECT_THROW(conv.forward(random_tensor(Shape{1, 2, 4, 4}, 27)),
               std::runtime_error);
}

TEST(Conv2d, TranslationEquivariance) {
  // Shifting the input by the stride shifts the output (away from
  // borders) — a fundamental conv property.
  Rng rng(28);
  Conv2d conv(1, 2, 3, 1, 1, rng, /*bias=*/false);
  Tensor x{Shape{1, 1, 8, 8}};
  x.at(0, 0, 3, 3) = 1.0f;
  const Tensor y1 = conv.forward(x);
  Tensor x2{Shape{1, 1, 8, 8}};
  x2.at(0, 0, 4, 3) = 1.0f;
  const Tensor y2 = conv.forward(x2);
  for (index_t c = 0; c < 2; ++c)
    for (index_t i = 2; i < 6; ++i)
      for (index_t j = 2; j < 6; ++j)
        EXPECT_NEAR(y1.at(0, c, i, j), y2.at(0, c, i + 1, j), 1e-6f);
}

}  // namespace
}  // namespace qdnn::nn
