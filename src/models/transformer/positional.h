// Sinusoidal positional encoding (Vaswani et al., Eq. 5): added to the
// scaled token embeddings.  Precomputed once for a maximum length.
#pragma once

#include "core/tensor.h"
#include "nn/module.h"

namespace qdnn::models {

class PositionalEncoding {
 public:
  PositionalEncoding(index_t max_len, index_t d_model);

  // Adds PE[0..t) to a flattened [N·T, D] activation.
  void add_to(Tensor& flat, index_t n, index_t t) const;

  const Tensor& table() const { return table_; }
  index_t max_len() const { return max_len_; }
  index_t d_model() const { return d_model_; }

 private:
  index_t max_len_, d_model_;
  Tensor table_;  // [max_len, d_model]
};

// The embedding epilogue of the Transformer as a serving stage:
// y = x · sqrt(d_model) + PE, on [N, T, D].  Non-owning view over a
// PositionalEncoding table; shape-preserving, allocation-free and
// stateless, so it shards safely in a flattened encoder pipeline.
class PositionalScale : public nn::Module {
 public:
  explicit PositionalScale(const PositionalEncoding& pos,
                           std::string name = "pos_scale");

  Tensor forward(const Tensor& input) override;   // [N, T, D]
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  std::string name() const override { return name_; }

 private:
  const PositionalEncoding* pos_;
  float scale_;
  std::string name_;
};

}  // namespace qdnn::models
