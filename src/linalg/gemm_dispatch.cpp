// Backend resolution and the row-sharded threaded gemm path.
//
// Resolution: QDNN_GEMM_BACKEND env override > best compiled-in backend
// the CPU supports (CPUID) > generic.  Resolved once, cached in an
// atomic; set_gemm_backend() narrows it for tests and A/B benches.
//
// Threading: one persistent process-wide pool (lazily spun up by
// set_gemm_threads / QDNN_GEMM_THREADS, never inside a steady-state
// call).  A threaded call copies its job descriptor into the pool,
// publishes a new generation, and claims row chunks alongside the
// workers under one mutex — chunk counts are tiny (<= thread budget),
// so the lock is cold next to the O(m·n·k/threads) kernel work per
// chunk.  Rows are computed by the identical per-row kernel sequence
// regardless of which thread runs them, so the sharded result is
// bit-identical to the inline kernel.  If another thread is mid-job,
// try_run bails and the caller runs inline (correct either way; no
// caller ever blocks on a peer's gemm).
//
// QDNN_USE_BLAS is accepted as a build option but currently a stub: no
// BLAS backend is wired in, and dispatch never selects one.  The hook
// below marks where an OpenBLAS/Eigen call would slot in.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include "linalg/gemm_kernels.h"
#include "obs/metrics.h"

namespace qdnn::linalg {

namespace {

constexpr int kMaxGemmThreads = 64;

std::atomic<int> g_backend{-1};  // -1 = unresolved
std::atomic<int> g_threads{1};
std::atomic<long long> g_min_work{2'000'000};
// Introspection counters live in the global metrics registry so they
// export alongside the serving instruments.  Registered eagerly at
// static init (global() is a Meyers singleton, so order is safe): no
// first-use registration can allocate inside a counted steady-state
// loop, and the per-call record stays one relaxed fetch_add.
obs::Counter& g_heap_pack_calls =
    obs::MetricsRegistry::global().counter("gemm.heap_pack_calls");
obs::Counter& g_threaded_dispatches =
    obs::MetricsRegistry::global().counter("gemm.threaded_dispatches");
thread_local int t_serial_depth = 0;

bool cpu_has_avx2_fma() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

GemmBackend best_supported() {
#if defined(QDNN_SIMD_AVX2)
  if (cpu_has_avx2_fma()) return GemmBackend::kAvx2;
#endif
#if defined(QDNN_SIMD_NEON)
  return GemmBackend::kNeon;  // baseline ISA on aarch64
#endif
  return GemmBackend::kGeneric;
}

GemmBackend resolve_default() {
  if (const char* env = std::getenv("QDNN_GEMM_BACKEND")) {
    GemmBackend want = GemmBackend::kGeneric;
    bool known = true;
    if (std::strcmp(env, "generic") == 0) want = GemmBackend::kGeneric;
    else if (std::strcmp(env, "avx2") == 0) want = GemmBackend::kAvx2;
    else if (std::strcmp(env, "neon") == 0) want = GemmBackend::kNeon;
    else known = false;
    if (known && gemm_backend_supported(want)) return want;
    std::fprintf(stderr,
                 "qdnn: QDNN_GEMM_BACKEND=%s not usable on this "
                 "build/CPU, falling back to %s\n",
                 env, gemm_backend_name(best_supported()));
  }
  return best_supported();
}

// Selects the kernel entry point for a resolved backend.  An enum value
// whose kernels are not compiled in can never be active (set_gemm_backend
// rejects it); the generic fallback here is belt-and-braces.
void run_kernel(GemmBackend backend, index_t m, index_t n, index_t k,
                float alpha, const float* a, index_t lda,
                const detail::BDesc& b, float* c, index_t ldc) {
  switch (backend) {
#if defined(QDNN_SIMD_AVX2)
    case GemmBackend::kAvx2:
      detail::gemm_kernel_avx2(m, n, k, alpha, a, lda, b, c, ldc);
      return;
#endif
#if defined(QDNN_SIMD_NEON)
    case GemmBackend::kNeon:
      detail::gemm_kernel_neon(m, n, k, alpha, a, lda, b, c, ldc);
      return;
#endif
    default:
      detail::gemm_kernel_generic(m, n, k, alpha, a, lda, b, c, ldc);
      return;
  }
}

// ---------------------------------------------------------------------
// Persistent pool.
// ---------------------------------------------------------------------

struct GemmJob {
  GemmBackend backend;
  index_t m, n, k;
  float alpha;
  const float* a;
  index_t lda;
  detail::BDesc b;
  float* c;
  index_t ldc;
};

void run_rows(const GemmJob& j, index_t r0, index_t r1) {
  run_kernel(j.backend, r1 - r0, j.n, j.k, j.alpha, j.a + r0 * j.lda,
             j.lda, j.b, j.c + r0 * j.ldc, j.ldc);
}

class GemmPool {
 public:
  static GemmPool& instance() {
    static GemmPool pool;
    return pool;
  }

  ~GemmPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  // Spawns workers until `count` exist (never shrinks; surplus workers
  // idle on the condvar).  Called from set_gemm_threads, so no thread
  // is ever created inside a steady-state gemm call.
  void ensure_workers(int count) {
    std::lock_guard<std::mutex> lk(spawn_mu_);
    while (static_cast<int>(workers_.size()) < count)
      workers_.emplace_back([this] { worker_loop(); });
  }

  // Shards [0, m) across `parts` chunks run by this thread + workers.
  // Returns false (caller runs inline) when another job is in flight.
  bool try_run(const GemmJob& job, int parts) {
    if (!job_mu_.try_lock()) return false;
    const index_t chunk = (job.m + parts - 1) / parts;
    {
      std::lock_guard<std::mutex> lk(mu_);
      job_ = job;
      chunk_ = chunk;
      nchunks_ = (job.m + chunk - 1) / chunk;
      next_chunk_ = 0;
      chunks_done_ = 0;
      ++gen_;
    }
    work_cv_.notify_all();
    const std::uint64_t my_gen = gen_;
    index_t c;
    while (claim(my_gen, c)) {
      run_rows(job_, c * chunk_, std::min(job_.m, (c + 1) * chunk_));
      complete();
    }
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return chunks_done_ == nchunks_; });
      nchunks_ = 0;  // job retired; stale workers can claim nothing
    }
    job_mu_.unlock();
    return true;
  }

 private:
  void worker_loop() {
    // Workers are one lane of the pool's parallelism: a nested gemm on
    // this thread must never re-enter the pool.
    GemmSerialScope serial;
    std::uint64_t seen = 0;
    for (;;) {
      std::uint64_t my_gen;
      {
        std::unique_lock<std::mutex> lk(mu_);
        work_cv_.wait(lk, [&] {
          return stop_ || (gen_ != seen && next_chunk_ < nchunks_);
        });
        if (stop_) return;
        seen = my_gen = gen_;
      }
      index_t c;
      while (claim(my_gen, c)) {
        run_rows(job_, c * chunk_, std::min(job_.m, (c + 1) * chunk_));
        complete();
      }
    }
  }

  // Claims the next chunk of generation `my_gen`; fails once the
  // generation moved on or every chunk is claimed.  job_/chunk_ reads
  // outside mu_ are safe: they only mutate under job_mu_ after every
  // chunk of the previous generation completed.
  bool claim(std::uint64_t my_gen, index_t& c) {
    std::lock_guard<std::mutex> lk(mu_);
    if (gen_ != my_gen || next_chunk_ >= nchunks_) return false;
    c = next_chunk_++;
    return true;
  }

  void complete() {
    bool all;
    {
      std::lock_guard<std::mutex> lk(mu_);
      all = ++chunks_done_ == nchunks_;
    }
    if (all) done_cv_.notify_all();
  }

  std::mutex job_mu_;  // one job in flight at a time
  std::mutex spawn_mu_;
  std::mutex mu_;
  std::condition_variable work_cv_, done_cv_;
  std::vector<std::thread> workers_;
  GemmJob job_{};
  index_t chunk_ = 0, nchunks_ = 0, next_chunk_ = 0, chunks_done_ = 0;
  std::uint64_t gen_ = 0;
  bool stop_ = false;
};

// Reads the env knobs once, before main on most platforms, so the pool
// exists before any steady-state (allocation-counted) serving loop.
struct EnvInit {
  EnvInit() {
    if (const char* env = std::getenv("QDNN_GEMM_THREADS")) {
      const int t = std::atoi(env);
      if (t > 0) set_gemm_threads(t);
    }
    if (const char* env = std::getenv("QDNN_GEMM_MIN_WORK")) {
      const long long w = std::atoll(env);
      if (w >= 0) set_gemm_thread_min_work(w);
    }
  }
};
EnvInit g_env_init;

}  // namespace

const char* gemm_backend_name(GemmBackend backend) {
  switch (backend) {
    case GemmBackend::kAvx2: return "avx2";
    case GemmBackend::kNeon: return "neon";
    default: return "generic";
  }
}

bool gemm_backend_compiled(GemmBackend backend) {
  switch (backend) {
    case GemmBackend::kGeneric:
      return true;
    case GemmBackend::kAvx2:
#if defined(QDNN_SIMD_AVX2)
      return true;
#else
      return false;
#endif
    case GemmBackend::kNeon:
#if defined(QDNN_SIMD_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool gemm_backend_supported(GemmBackend backend) {
  if (!gemm_backend_compiled(backend)) return false;
  if (backend == GemmBackend::kAvx2) return cpu_has_avx2_fma();
  return true;
}

GemmBackend active_gemm_backend() {
  int b = g_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    // Benign race: resolve_default is deterministic per process.
    b = static_cast<int>(resolve_default());
    g_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<GemmBackend>(b);
}

void set_gemm_backend(GemmBackend backend) {
  QDNN_CHECK(gemm_backend_supported(backend),
             "set_gemm_backend: " << gemm_backend_name(backend)
                                  << " is not supported on this build/CPU");
  g_backend.store(static_cast<int>(backend), std::memory_order_relaxed);
}

int gemm_threads() { return g_threads.load(std::memory_order_relaxed); }

void set_gemm_threads(int threads) {
  QDNN_CHECK(threads >= 1,
             "set_gemm_threads: threads must be >= 1, got " << threads);
  if (threads > kMaxGemmThreads) threads = kMaxGemmThreads;
  if (threads > 1) GemmPool::instance().ensure_workers(threads - 1);
  g_threads.store(threads, std::memory_order_relaxed);
}

long long gemm_thread_min_work() {
  return g_min_work.load(std::memory_order_relaxed);
}

void set_gemm_thread_min_work(long long flops) {
  QDNN_CHECK(flops >= 0,
             "set_gemm_thread_min_work: threshold must be >= 0");
  g_min_work.store(flops, std::memory_order_relaxed);
}

GemmSerialScope::GemmSerialScope() { ++t_serial_depth; }
GemmSerialScope::~GemmSerialScope() { --t_serial_depth; }

long long gemm_heap_pack_calls() { return g_heap_pack_calls.value(); }

long long gemm_threaded_dispatches() {
  return g_threaded_dispatches.value();
}

namespace detail {

void note_heap_pack_call() { g_heap_pack_calls.inc(); }

void run_gemm(GemmBackend backend, index_t m, index_t n, index_t k,
              float alpha, const float* a, index_t lda, const BDesc& b,
              float* c, index_t ldc) {
  const int threads = g_threads.load(std::memory_order_relaxed);
  if (threads > 1 && t_serial_depth == 0 && m >= 2 &&
      2LL * m * n * k >= g_min_work.load(std::memory_order_relaxed)) {
    const int parts =
        static_cast<int>(std::min<index_t>(threads, m));
    GemmJob job{backend, m, n, k, alpha, a, lda, b, c, ldc};
    if (parts > 1 && GemmPool::instance().try_run(job, parts)) {
      g_threaded_dispatches.inc();
      return;
    }
  }
  run_kernel(backend, m, n, k, alpha, a, lda, b, c, ldc);
}

}  // namespace detail
}  // namespace qdnn::linalg
