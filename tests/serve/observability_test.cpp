// Serving-stack observability contracts: per-request phase timelines
// (RequestResult::phases) populated when tracing is on and exactly zero
// when off, scheduler registry counters agreeing with the returned
// results, trace-ring timelines carrying the full request lifecycle, and
// the Server's per-shard instruments — shard_stats(), the shard<i>.*
// registry prefixes and the per-replica weight-checksum gauges.
#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "decode_test_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace qdnn::serve {
namespace {

using models::Transformer;
using qdnn::testing::random_src_ids;
using qdnn::testing::tiny_transformer_config;

constexpr index_t kBos = 1, kEos = 2;

struct TraceFlagGuard {
  bool saved = obs::trace_enabled();
  ~TraceFlagGuard() { obs::set_trace_enabled(saved); }
};

BatchSchedulerConfig scheduler_config(index_t max_batch,
                                      index_t max_steps) {
  BatchSchedulerConfig config;
  config.session.max_batch = max_batch;
  config.session.max_steps = max_steps;
  config.bos = kBos;
  config.eos = kEos;
  return config;
}

long long counter_value(const obs::MetricsSnapshot& snap,
                        const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  ADD_FAILURE() << "counter '" << name << "' not in snapshot";
  return -1;
}

double gauge_value(const obs::MetricsSnapshot& snap,
                   const std::string& name) {
  for (const auto& g : snap.gauges)
    if (g.name == name) return g.value;
  ADD_FAILURE() << "gauge '" << name << "' not in snapshot";
  return -1.0;
}

std::vector<RequestResult> run_all(BatchScheduler& scheduler,
                                   index_t count, index_t budget,
                                   std::uint64_t seed) {
  for (index_t i = 0; i < count; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4 + i % 3, 20, seed + i);
    req.max_new_tokens = budget;
    scheduler.submit(std::move(req));
  }
  scheduler.run();
  return scheduler.take_results();
}

TEST(Observability, PhasesPopulatedWhenTracingEnabled) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));
  const auto results = run_all(scheduler, 5, 4, 300);
  ASSERT_EQ(results.size(), 5u);
  for (const RequestResult& r : results) {
    ASSERT_TRUE(r.reason == FinishReason::kEos ||
                r.reason == FinishReason::kLength)
        << "unexpected reason for id " << r.id;
    EXPECT_GT(r.phases.total_ns, 0) << r.id;
    EXPECT_GT(r.phases.prefill_ns, 0) << r.id;
    EXPECT_GT(r.phases.decode_ns, 0) << r.id;
    EXPECT_GE(r.phases.queue_ns, 0) << r.id;
    // First token lands between submission and retirement (a request
    // whose very first sample is eos legitimately has none).
    if (!r.tokens.empty()) {
      EXPECT_GT(r.phases.first_token_ns, 0) << r.id;
      EXPECT_LE(r.phases.first_token_ns, r.phases.total_ns) << r.id;
    }
    EXPECT_LE(r.phases.decode_ns, r.phases.total_ns) << r.id;
    EXPECT_LE(r.phases.queue_ns, r.phases.total_ns) << r.id;
  }
}

TEST(Observability, PhasesZeroWhenTracingDisabled) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(false);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));
  const auto results = run_all(scheduler, 4, 3, 320);
  ASSERT_EQ(results.size(), 4u);
  for (const RequestResult& r : results) {
    EXPECT_EQ(r.phases.total_ns, 0) << r.id;
    EXPECT_EQ(r.phases.queue_ns, 0) << r.id;
    EXPECT_EQ(r.phases.prefill_ns, 0) << r.id;
    EXPECT_EQ(r.phases.first_token_ns, 0) << r.id;
    EXPECT_EQ(r.phases.decode_ns, 0) << r.id;
  }
  EXPECT_EQ(scheduler.trace().recorded(), 0);
}

TEST(Observability, TracingOnOffTokensAreBitIdentical) {
  // The bit-identity contract must hold with telemetry live: the traced
  // run's tokens match the untraced run's exactly.
  TraceFlagGuard guard;
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  auto tokens_of = [&](bool tracing) {
    obs::set_trace_enabled(tracing);
    BatchScheduler scheduler(model, scheduler_config(2, 8));
    std::map<index_t, std::vector<index_t>> out;
    for (const RequestResult& r : run_all(scheduler, 5, 5, 340))
      out[r.id] = r.tokens;
    return out;
  };
  EXPECT_EQ(tokens_of(false), tokens_of(true));
}

TEST(Observability, RegistryCountersMatchResults) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));
  const auto results = run_all(scheduler, 6, 4, 360);
  index_t tokens = 0;
  for (const RequestResult& r : results)
    tokens += static_cast<index_t>(r.tokens.size());

  const obs::MetricsSnapshot snap = scheduler.metrics().snapshot();
  EXPECT_EQ(counter_value(snap, "scheduler.normal.submitted"), 6);
  EXPECT_EQ(counter_value(snap, "scheduler.normal.completed"), 6);
  EXPECT_EQ(counter_value(snap, "scheduler.tokens"), tokens);
  EXPECT_EQ(counter_value(snap, "scheduler.tokens"),
            scheduler.total_tokens());
  EXPECT_EQ(counter_value(snap, "scheduler.ticks"), scheduler.ticks());
  EXPECT_EQ(gauge_value(snap, "scheduler.live_rows"), 0.0);
  EXPECT_EQ(gauge_value(snap, "scheduler.queue_depth"), 0.0);
  // The latency histogram saw every completed request.
  bool latency_seen = false;
  for (const auto& h : snap.histograms) {
    if (h.name == "scheduler.latency_ticks") {
      EXPECT_EQ(h.count, 6);
      latency_seen = true;
    }
  }
  EXPECT_TRUE(latency_seen);
  // SchedulerStats is now a view over the same registry.
  const SchedulerStats stats = scheduler.stats();
  EXPECT_EQ(stats.total_tokens, tokens);
  const auto& normal =
      stats.per_class[static_cast<std::size_t>(Priority::kNormal)];
  EXPECT_EQ(normal.submitted, 6);
  EXPECT_EQ(normal.completed, 6);
}

TEST(Observability, TraceTimelineCarriesTheRequestLifecycle) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));
  const auto results = run_all(scheduler, 3, 3, 380);
  ASSERT_EQ(results.size(), 3u);

  const auto records = scheduler.trace().snapshot();
  ASSERT_FALSE(records.empty());
  std::map<index_t, std::set<obs::TraceEvent>> per_id;
  for (const auto& rec : records) per_id[rec.id].insert(rec.event);
  for (const RequestResult& r : results) {
    const auto& events = per_id[r.id];
    EXPECT_TRUE(events.count(obs::TraceEvent::kSubmit)) << r.id;
    EXPECT_TRUE(events.count(obs::TraceEvent::kQueueAdmit)) << r.id;
    EXPECT_TRUE(events.count(obs::TraceEvent::kPrefillStart)) << r.id;
    EXPECT_TRUE(events.count(obs::TraceEvent::kPrefillEnd)) << r.id;
    EXPECT_TRUE(events.count(obs::TraceEvent::kCommit)) << r.id;
    if (!r.tokens.empty())
      EXPECT_TRUE(events.count(obs::TraceEvent::kFirstToken)) << r.id;
    EXPECT_TRUE(events.count(obs::TraceEvent::kRetire)) << r.id;
  }
  // Timestamps are monotone in claim order.
  for (std::size_t i = 1; i < records.size(); ++i)
    EXPECT_LE(records[i - 1].t_ns, records[i].t_ns);
}

TEST(Observability, AsyncAdmissionTracesPrefillFromTheWorker) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchSchedulerConfig config = scheduler_config(2, 8);
  config.prefill_workers = 1;
  BatchScheduler scheduler(model, config);
  const auto results = run_all(scheduler, 4, 3, 400);
  ASSERT_EQ(results.size(), 4u);
  for (const RequestResult& r : results) {
    EXPECT_GT(r.phases.prefill_ns, 0) << r.id;
    EXPECT_GT(r.phases.total_ns, 0) << r.id;
  }
  std::map<index_t, int> prefill_starts;
  for (const auto& rec : scheduler.trace().snapshot())
    if (rec.event == obs::TraceEvent::kPrefillStart)
      ++prefill_starts[rec.id];
  EXPECT_EQ(prefill_starts.size(), 4u);
}

TEST(Observability, ShedAndCancelLandInClassCounters) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchSchedulerConfig config = scheduler_config(1, 8);
  config.max_queue = 1;
  BatchScheduler scheduler(model, config);

  std::vector<index_t> ids;
  index_t sheds = 0;
  for (index_t i = 0; i < 4; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4, 20, 420 + i);
    req.max_new_tokens = 6;
    ids.push_back(scheduler.submit(std::move(req)));
  }
  for (RequestResult& r : scheduler.take_results())
    if (r.reason == FinishReason::kShed) ++sheds;
  ASSERT_GT(sheds, 0) << "queue bound did not shed";
  // Cancel one still-pending id.
  index_t cancelled = 0;
  for (index_t id : ids)
    if (scheduler.cancel(id)) ++cancelled;
  ASSERT_GT(cancelled, 0);
  scheduler.run();
  scheduler.take_results();

  const obs::MetricsSnapshot snap = scheduler.metrics().snapshot();
  EXPECT_EQ(counter_value(snap, "scheduler.normal.submitted"), 4);
  EXPECT_EQ(counter_value(snap, "scheduler.normal.shed"), sheds);
  EXPECT_EQ(counter_value(snap, "scheduler.normal.cancelled"), cancelled);
  // The trace carries the shed and cancel resolutions too.
  index_t shed_events = 0, cancel_events = 0;
  for (const auto& rec : scheduler.trace().snapshot()) {
    if (rec.event == obs::TraceEvent::kShed) ++shed_events;
    if (rec.event == obs::TraceEvent::kCancel) ++cancel_events;
  }
  EXPECT_EQ(shed_events, sheds);
  EXPECT_EQ(cancel_events, cancelled);
}

// -------------------------------------------------------------------
// Server-level observability.
// -------------------------------------------------------------------

TEST(Observability, ServerExportsPerShardInstrumentsAndChecksums) {
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  const index_t shards = 2;
  std::vector<std::unique_ptr<Transformer>> replicas;
  std::vector<Transformer*> raw;
  for (index_t i = 0; i < shards; ++i) {
    replicas.push_back(
        std::make_unique<Transformer>(tiny_transformer_config()));
    replicas.back()->set_training(false);
    raw.push_back(replicas.back().get());
  }
  ServerConfig config;
  config.shard.session.max_batch = 2;
  config.shard.session.max_steps = 8;
  config.shard.bos = kBos;
  config.shard.eos = kEos;
  Server server(raw, config);

  // Identically-seeded replicas hash identically; the gauges export it.
  EXPECT_EQ(server.weight_checksum(0), server.weight_checksum(1));
  EXPECT_GT(server.weight_checksum(0), 0.0);
  EXPECT_THROW(server.weight_checksum(-1), std::runtime_error);
  EXPECT_THROW(server.weight_checksum(2), std::runtime_error);

  index_t submitted = 0;
  for (index_t i = 0; i < 6; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4, 20, 500 + i);
    req.max_new_tokens = 4;
    server.submit(std::move(req));
    ++submitted;
  }
  server.wait_idle();
  const auto results = server.take_results();
  ASSERT_EQ(static_cast<index_t>(results.size()), submitted);
  for (const RequestResult& r : results)
    EXPECT_GT(r.phases.total_ns, 0) << r.id;

  const obs::MetricsSnapshot snap = server.metrics().snapshot();
  EXPECT_DOUBLE_EQ(gauge_value(snap, "server.shard0.weight_checksum"),
                   server.weight_checksum(0));
  EXPECT_DOUBLE_EQ(gauge_value(snap, "server.shard1.weight_checksum"),
                   server.weight_checksum(1));
  // Both shards registered under their own prefixes; submit counters
  // across shards sum to the total.
  const long long sub0 =
      counter_value(snap, "shard0.normal.submitted");
  const long long sub1 =
      counter_value(snap, "shard1.normal.submitted");
  EXPECT_EQ(sub0 + sub1, submitted);

  // shard_stats agrees with the rolled-up stats().
  EXPECT_THROW(server.shard_stats(2), std::runtime_error);
  const ServerStats all = server.stats();
  index_t tokens = 0;
  for (index_t s = 0; s < shards; ++s)
    tokens += server.shard_stats(s).total_tokens;
  EXPECT_EQ(tokens, all.totals.total_tokens);
}

TEST(Observability, PerClassPhaseHistogramsObserveSampledRetirements) {
  // RequestResult::phases feed the per-class wall-clock histograms at
  // retirement: each retired (sampled) request lands one observation in
  // its class's queue/prefill/decode histograms, and an untouched class
  // stays empty.
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));
  for (index_t i = 0; i < 5; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4, 20, 900 + i);
    req.max_new_tokens = 4;
    req.priority = (i < 2) ? Priority::kHigh : Priority::kNormal;
    scheduler.submit(std::move(req));
  }
  scheduler.run();
  ASSERT_EQ(scheduler.take_results().size(), 5u);

  const obs::MetricsSnapshot snap = scheduler.metrics().snapshot();
  auto hist_count = [&](const std::string& name) -> long long {
    for (const auto& h : snap.histograms)
      if (h.name == name) return h.count;
    ADD_FAILURE() << "histogram '" << name << "' not in snapshot";
    return -1;
  };
  EXPECT_EQ(hist_count("scheduler.high.queue_us"), 2);
  EXPECT_EQ(hist_count("scheduler.high.prefill_us"), 2);
  EXPECT_EQ(hist_count("scheduler.high.decode_us"), 2);
  EXPECT_EQ(hist_count("scheduler.normal.queue_us"), 3);
  EXPECT_EQ(hist_count("scheduler.normal.prefill_us"), 3);
  EXPECT_EQ(hist_count("scheduler.normal.decode_us"), 3);
  // first_token_us only observes requests that emitted a token, so it
  // is bounded by the class count rather than pinned to it.
  EXPECT_LE(hist_count("scheduler.high.first_token_us"), 2);
  EXPECT_EQ(hist_count("scheduler.low.queue_us"), 0);
  EXPECT_EQ(hist_count("scheduler.low.decode_us"), 0);
}

TEST(Observability, TraceSamplingRecordsEveryNthRequest) {
  // QDNN_TRACE_SAMPLE=3 semantics: the sampling decision is made once
  // at submit (requests 0, 3, ... in submit order), sampled requests
  // get the full lifecycle (phases + timeline records), unsampled ones
  // stay at zero phases and never appear in the trace ring.
  TraceFlagGuard guard;
  obs::set_trace_enabled(true);
  obs::set_trace_sample(3);
  Transformer model(tiny_transformer_config());
  model.set_training(false);
  BatchScheduler scheduler(model, scheduler_config(2, 8));

  std::vector<index_t> ids_in_submit_order;
  std::map<index_t, RequestResult> results;
  for (index_t i = 0; i < 6; ++i) {
    Request req;
    req.src_ids = random_src_ids(1, 4, 20, 950 + i);
    req.max_new_tokens = 3;
    ids_in_submit_order.push_back(scheduler.submit(std::move(req)));
    // One at a time, so the submit order IS the sampling sequence.
    scheduler.run();
    for (RequestResult& r : scheduler.take_results())
      results[r.id] = std::move(r);
  }
  ASSERT_EQ(results.size(), 6u);

  std::set<index_t> sampled_ids;
  for (std::size_t i = 0; i < ids_in_submit_order.size(); ++i) {
    const RequestResult& r = results.at(ids_in_submit_order[i]);
    if (i % 3 == 0) {
      sampled_ids.insert(r.id);
      EXPECT_GT(r.phases.total_ns, 0) << "sampled request " << i;
      EXPECT_GT(r.phases.prefill_ns, 0) << "sampled request " << i;
    } else {
      EXPECT_EQ(r.phases.total_ns, 0) << "unsampled request " << i;
      EXPECT_EQ(r.phases.queue_ns, 0) << "unsampled request " << i;
      EXPECT_EQ(r.phases.prefill_ns, 0) << "unsampled request " << i;
      EXPECT_EQ(r.phases.first_token_ns, 0) << "unsampled request " << i;
      EXPECT_EQ(r.phases.decode_ns, 0) << "unsampled request " << i;
    }
  }
  // The trace ring carries ONLY the sampled requests' lifecycles.
  for (const auto& rec : scheduler.trace().snapshot())
    EXPECT_TRUE(sampled_ids.count(rec.id))
        << "unsampled id " << rec.id << " leaked into the trace ring";
  obs::set_trace_sample(1);
}

}  // namespace
}  // namespace qdnn::serve
