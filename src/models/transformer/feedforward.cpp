#include "models/transformer/feedforward.h"

namespace qdnn::models {

FeedForward::FeedForward(index_t d_model, index_t d_ff, Rng& rng,
                         std::string name)
    : name_(std::move(name)),
      fc1_(d_model, d_ff, rng, true, name_ + ".fc1"),
      fc2_(d_ff, d_model, rng, true, name_ + ".fc2") {}

Tensor FeedForward::forward(const Tensor& input) {
  return fc2_.forward(relu_.forward(fc1_.forward(input)));
}

Tensor FeedForward::backward(const Tensor& grad_output) {
  return fc1_.backward(relu_.backward(fc2_.backward(grad_output)));
}

Shape FeedForward::output_shape(const Shape& input_shape) const {
  return fc2_.output_shape(relu_.output_shape(fc1_.output_shape(input_shape)));
}

bool FeedForward::supports_forward_into() const {
  return fc1_.supports_forward_into() && relu_.supports_forward_into() &&
         fc2_.supports_forward_into();
}

void FeedForward::forward_into(const ConstTensorView& input,
                               const TensorView& output, Workspace& ws) {
  const TensorView h = ws.take(fc1_.output_shape(input.shape()));
  fc1_.forward_into(input, h, ws);
  const TensorView a = ws.take(h.shape());
  relu_.forward_into(h, a, ws);
  fc2_.forward_into(a, output, ws);
}

void FeedForward::flatten_into(std::vector<nn::PipelineStage>& stages) {
  fc1_.flatten_into(stages);
  relu_.flatten_into(stages);
  fc2_.flatten_into(stages);
}

void FeedForward::freeze() {
  fc1_.freeze();
  relu_.freeze();
  fc2_.freeze();
  Module::freeze();
}

void FeedForward::unfreeze() {
  fc1_.unfreeze();
  relu_.unfreeze();
  fc2_.unfreeze();
  Module::unfreeze();
}

void FeedForward::set_training(bool training) {
  Module::set_training(training);
  fc1_.set_training(training);
  relu_.set_training(training);
  fc2_.set_training(training);
}

std::vector<nn::Parameter*> FeedForward::parameters() {
  std::vector<nn::Parameter*> params = fc1_.parameters();
  for (nn::Parameter* p : fc2_.parameters()) params.push_back(p);
  return params;
}

}  // namespace qdnn::models
