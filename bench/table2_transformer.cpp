// Table II reproduction: Transformer machine translation with quadratic
// attention projections.
//
// Paper setup: WMT14 En→De, newstest2014, BLEU under four evaluation
// settings (13a / International tokenization × cased / uncased), baseline
// Transformer (15.7M params) vs quadratic Transformer (12.6M, −20.3%)
// with Λ learning rates 1e-4 / 1e-5 / 1e-6.
//
// Here the corpus is the synthetic translation task (see DESIGN.md): the
// quadratic model uses the proposed neuron in all four MHA projections at
// reduced projection width, which is where the >20% parameter saving
// comes from; BLEU is scored with this repo's 13a/international
// tokenizers, cased and uncased.
//
// The serving section measures autoregressive decode throughput twice:
// the KV-cached runtime::DecodeSession (O(T) decoder work per token) vs
// the teacher-forced greedy_decode_reference (O(T²) full-prefix
// re-decode), so the cached speedup is a measured number, not an
// assertion.  `--smoke` runs only this section at a tiny scale — the CI
// decode-regression gate.
#include <cstdio>
#include <cstring>

#include <chrono>

#include "bench_util.h"
#include "runtime/decode_session.h"
#include "train/seq2seq_trainer.h"

using namespace qdnn;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

namespace {

struct Variant {
  std::string label;
  bool quadratic;
  float lambda_lr_scale;  // relative to the base LR (paper: Λ lr 1e-4..1e-6
                          // against much larger base)
};

models::TransformerConfig model_config(const Variant& v) {
  models::TransformerConfig config;
  config.src_vocab = 256;
  config.tgt_vocab = 256;
  config.d_model = 48;
  config.n_heads = 4;
  config.n_layers = 2;
  config.d_ff = 96;
  config.max_len = 32;
  config.dropout = 0.1f;
  config.seed = 17;
  if (v.quadratic) {
    // Proposed neurons in all MHA projections at reduced width: 24 = 4
    // heads × 6, divisible by rank+1 = 4 (k = 3 at this scale; the paper
    // uses k = 9 at d_model 512).
    config.proj_dim = 24;
    config.spec = quadratic::NeuronSpec::proposed(3, v.lambda_lr_scale);
  } else {
    config.proj_dim = 48;
    config.spec = quadratic::NeuronSpec::linear();
  }
  return config;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

// Decode throughput, cached vs uncached.  eos is set outside the vocab so
// every row decodes the full max_steps — both paths do identical token
// counts and the comparison is pure serving cost.
void run_decode_bench(bool smoke) {
  print_header("Autoregressive decode: KV-cached session vs O(T^2) "
               "teacher-forced reference");
  const index_t batch = smoke ? 2 : 8;
  const int reps = smoke ? 1 : 3;

  // Sources come from the same synthetic corpus the quality section
  // trains on (ragged lengths included), so the throughput numbers
  // reflect the id distribution the models actually serve.
  data::TranslationConfig cc;
  cc.train_sentences = 1;
  cc.test_sentences = batch;
  const data::TranslationCorpus corpus = make_translation_corpus(cc);
  const data::Seq2SeqBatch decode_batch =
      data::make_batch(corpus.test, 0, batch);

  CsvWriter csv(qdnn::bench::results_dir() + "/table2_decode.csv",
                {"model", "batch", "steps", "uncached_tok_s",
                 "cached_tok_s", "speedup"});
  print_row({"model", "steps", "uncached tok/s", "cached tok/s",
             "speedup"});
  print_rule();

  for (const bool quadratic : {false, true}) {
    const models::TransformerConfig config =
        model_config(Variant{"", quadratic, 1.0f});
    models::Transformer model(config);
    model.set_training(false);
    const index_t max_steps = smoke ? 8 : config.max_len;
    const index_t never_eos = config.tgt_vocab;  // outside the vocab
    const Tensor& src = decode_batch.src;
    const std::vector<index_t>& lens = decode_batch.src_lengths;

    // Uncached: the teacher-forced reference re-runs every decoder layer
    // over the whole prefix at every step.
    double uncached_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto out = model.greedy_decode_reference(src, lens, 1,
                                                     never_eos, max_steps);
      uncached_s += seconds_since(t0);
      QDNN_CHECK(static_cast<index_t>(out[0].size()) == max_steps,
                 "decode bench: expected full-length decode");
    }

    // Cached: bind once (freeze + warm-up), then prime + step.
    runtime::DecodeSessionConfig sc;
    sc.max_batch = batch;
    sc.max_steps = max_steps;
    sc.max_src = src.dim(1);
    runtime::DecodeSession session(model, sc);
    double cached_s = 0.0;
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      session.prime(src, lens);
      const auto out = session.generate(1, never_eos);
      cached_s += seconds_since(t0);
      QDNN_CHECK(static_cast<index_t>(out[0].size()) == max_steps,
                 "decode bench: expected full-length decode");
    }

    const double tokens =
        static_cast<double>(batch * max_steps) * reps;
    const double uncached_tps = tokens / uncached_s;
    const double cached_tps = tokens / cached_s;
    const std::string label = quadratic ? "Quadratic" : "Baseline";
    print_row({label, fmt(static_cast<double>(max_steps), 0),
               fmt(uncached_tps, 0), fmt(cached_tps, 0),
               fmt(uncached_s / cached_s, 2) + "x"});
    csv.write_row(std::vector<std::string>{
        label, std::to_string(batch), std::to_string(max_steps),
        fmt(uncached_tps, 0), fmt(cached_tps, 0),
        fmt(uncached_s / cached_s, 2)});
  }
  print_rule();
  std::printf(
      "Expected shape: the cached session does O(T) attention work per\n"
      "token vs O(T^2) prefix re-decode, so the speedup grows with the\n"
      "decode length (and the gap widens as max_steps rises).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  if (smoke) {
    // CI decode-regression gate: exercise the cached-vs-uncached bench
    // end-to-end in a few hundred milliseconds, skipping training/BLEU.
    run_decode_bench(/*smoke=*/true);
    return 0;
  }
  const int scale = bench_scale();
  print_header("Table II: translation quality and parameter cost");

  data::TranslationConfig corpus_config;
  corpus_config.train_sentences = 1500 * scale;
  corpus_config.test_sentences = 96;
  const data::TranslationCorpus corpus =
      make_translation_corpus(corpus_config);
  std::printf("synthetic corpus: %zu train / %zu test sentences, "
              "src vocab %lld, tgt vocab %lld\n\n",
              corpus.train.size(), corpus.test.size(),
              static_cast<long long>(corpus.src_vocab.size()),
              static_cast<long long>(corpus.tgt_vocab.size()));

  const std::vector<Variant> variants = {
      {"Baseline", false, 1.0f},
      {"Quad 1E-4", true, 1e-1f},
      {"Quad 1E-5", true, 1e-2f},
      {"Quad 1E-6", true, 1e-3f},
  };

  const std::vector<std::pair<std::string, train::BleuSettings>> settings =
      {
          {"13a/cased", {data::TokenizerKind::k13a, true}},
          {"13a/uncased", {data::TokenizerKind::k13a, false}},
          {"intl/cased", {data::TokenizerKind::kInternational, true}},
          {"intl/uncased", {data::TokenizerKind::kInternational, false}},
      };

  CsvWriter csv(qdnn::bench::results_dir() + "/table2_transformer.csv",
                {"model", "params", "setting", "bleu"});

  struct Row {
    std::string label;
    index_t params;
    std::vector<double> bleu;
  };
  std::vector<Row> rows;
  for (const Variant& v : variants) {
    models::Transformer model(model_config(v));
    train::Seq2SeqConfig tc;
    tc.epochs = 24 * scale;
    tc.batch_size = 32;
    tc.peak_lr = 5e-3f;  // Adam + warmup/inv-sqrt (Vaswani recipe)
    tc.warmup_steps = 100;
    tc.seed = 400;
    train::Seq2SeqTrainer trainer(model, tc);
    trainer.fit(corpus);

    Row row{v.label, model.num_parameters(), {}};
    for (const auto& [name, setting] : settings) {
      const data::BleuResult bleu =
          trainer.evaluate_bleu(corpus, setting);
      row.bleu.push_back(bleu.bleu);
      csv.write_row(std::vector<std::string>{
          v.label, std::to_string(row.params), name, fmt(bleu.bleu, 2)});
    }
    rows.push_back(row);
    std::printf("trained %-10s (params %s k)\n", v.label.c_str(),
                fmt(row.params / 1e3, 1).c_str());
  }

  print_header("BLEU by evaluation setting (higher is better)");
  print_row({"setting", rows[0].label, rows[1].label, rows[2].label,
             rows[3].label});
  print_rule();
  for (std::size_t s = 0; s < settings.size(); ++s)
    print_row({settings[s].first, fmt(rows[0].bleu[s], 2),
               fmt(rows[1].bleu[s], 2), fmt(rows[2].bleu[s], 2),
               fmt(rows[3].bleu[s], 2)});
  print_rule();
  print_row({"#params/k", fmt(rows[0].params / 1e3, 1),
             fmt(rows[1].params / 1e3, 1), fmt(rows[2].params / 1e3, 1),
             fmt(rows[3].params / 1e3, 1)});

  const double delta =
      100.0 *
      (static_cast<double>(rows[1].params) - rows[0].params) /
      rows[0].params;
  std::printf(
      "\nParameter delta quad vs baseline: %+.1f%% (paper: -20.3%%, "
      "15.7M -> 12.6M).\n"
      "Expected shape: quadratic models reach equal-or-better BLEU with\n"
      ">20%% fewer parameters; FLOPs track parameters (~2 MACs/param per\n"
      "token, Kaplan et al.), so the FLOP saving matches.\n",
      delta);

  run_decode_bench(/*smoke=*/false);
  return 0;
}
