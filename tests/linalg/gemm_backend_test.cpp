// Backend-parity suite for the gemm dispatch seam
// (src/linalg/gemm_backend.h):
//   * every compiled backend vs a double-accumulation reference, fuzzed
//     across ragged shapes, trans flags, and alpha/beta;
//   * SIMD vs generic under tolerance (FMA reassociation is the only
//     permitted difference);
//   * prepacked vs unpacked bit-exact *within* each backend, including
//     zero-padded tail panels;
//   * the row-sharded threaded path bit-exact vs inline, engaged and
//     suppressed (GemmSerialScope) on cue;
//   * dot/axpy backend variants, and the heap-pack counter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "linalg/gemm.h"
#include "linalg/gemm_backend.h"
#include "linalg/packed_weights.h"

namespace qdnn::linalg {
namespace {

// Deterministic fill, values in roughly [-1, 1] with varied magnitudes.
void fill(std::vector<float>& v, std::uint32_t seed) {
  std::uint32_t s = seed * 2654435761u + 12345u;
  for (float& x : v) {
    s = s * 1664525u + 1013904223u;
    x = static_cast<float>(static_cast<std::int32_t>(s >> 8)) /
        static_cast<float>(1 << 23);
  }
}

// Reference gemm with double accumulators — ground truth all backends
// are compared against under tolerance.
void ref_gemm(bool trans_a, bool trans_b, index_t m, index_t n, index_t k,
              float alpha, const std::vector<float>& a, index_t lda,
              const std::vector<float>& b, index_t ldb, float beta,
              std::vector<float>& c, index_t ldc) {
  for (index_t i = 0; i < m; ++i) {
    for (index_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (index_t p = 0; p < k; ++p) {
        const float av = trans_a ? a[static_cast<std::size_t>(p * lda + i)]
                                 : a[static_cast<std::size_t>(i * lda + p)];
        const float bv = trans_b ? b[static_cast<std::size_t>(j * ldb + p)]
                                 : b[static_cast<std::size_t>(p * ldb + j)];
        acc += static_cast<double>(av) * static_cast<double>(bv);
      }
      float& out = c[static_cast<std::size_t>(i * ldc + j)];
      out = static_cast<float>(static_cast<double>(alpha) * acc +
                               static_cast<double>(beta) *
                                   static_cast<double>(out));
    }
  }
}

std::vector<GemmBackend> supported_backends() {
  std::vector<GemmBackend> out;
  for (GemmBackend be :
       {GemmBackend::kGeneric, GemmBackend::kAvx2, GemmBackend::kNeon})
    if (gemm_backend_supported(be)) out.push_back(be);
  return out;
}

// Restores global dispatch state (backend, threads, threshold) so tests
// compose in any order.
class GemmBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_backend_ = active_gemm_backend();
    saved_threads_ = gemm_threads();
    saved_min_work_ = gemm_thread_min_work();
  }
  void TearDown() override {
    set_gemm_backend(saved_backend_);
    set_gemm_threads(saved_threads_);
    set_gemm_thread_min_work(saved_min_work_);
  }

 private:
  GemmBackend saved_backend_{};
  int saved_threads_ = 1;
  long long saved_min_work_ = 0;
};

// Shapes chosen to hit every microkernel edge: full 6x16 (avx2) / 4x16
// (neon) tiles, every ragged row count, ragged panel tails of 1..15
// columns, k of 0/1/odd, and the serving shapes from bench/serve_bench.
struct Shape {
  index_t m, n, k;
};
const Shape kShapes[] = {
    {1, 1, 1},    {1, 16, 7},  {2, 15, 3},   {3, 17, 5},  {4, 16, 32},
    {5, 31, 9},   {6, 16, 48}, {6, 48, 48},  {7, 33, 21}, {8, 48, 48},
    {8, 256, 48}, {12, 32, 1}, {13, 49, 17}, {17, 64, 8}, {23, 100, 29},
    {24, 48, 16}, {31, 95, 7}, {64, 64, 64},
};

TEST_F(GemmBackendTest, BackendQueriesAreConsistent) {
  EXPECT_STREQ(gemm_backend_name(GemmBackend::kGeneric), "generic");
  EXPECT_STREQ(gemm_backend_name(GemmBackend::kAvx2), "avx2");
  EXPECT_STREQ(gemm_backend_name(GemmBackend::kNeon), "neon");
  EXPECT_TRUE(gemm_backend_compiled(GemmBackend::kGeneric));
  EXPECT_TRUE(gemm_backend_supported(GemmBackend::kGeneric));
  for (GemmBackend be : {GemmBackend::kAvx2, GemmBackend::kNeon})
    if (gemm_backend_supported(be)) EXPECT_TRUE(gemm_backend_compiled(be));
  // The resolved default must itself be supported.
  EXPECT_TRUE(gemm_backend_supported(active_gemm_backend()));
}

TEST_F(GemmBackendTest, SetUnsupportedBackendThrows) {
  for (GemmBackend be : {GemmBackend::kAvx2, GemmBackend::kNeon})
    if (!gemm_backend_supported(be))
      EXPECT_THROW(set_gemm_backend(be), std::runtime_error);
}

TEST_F(GemmBackendTest, AllBackendsMatchReferenceAcrossShapesAndFlags) {
  for (GemmBackend be : supported_backends()) {
    set_gemm_backend(be);
    std::uint32_t seed = 1;
    for (const Shape& s : kShapes) {
      for (bool ta : {false, true}) {
        for (bool tb : {false, true}) {
          for (float alpha : {1.0f, 0.5f}) {
            for (float beta : {0.0f, 1.0f, -0.25f}) {
              const index_t lda = ta ? s.m : s.k;
              const index_t ldb = tb ? s.k : s.n;
              std::vector<float> a(static_cast<std::size_t>(
                  (ta ? s.k : s.m) * lda));
              std::vector<float> b(static_cast<std::size_t>(
                  (tb ? s.n : s.k) * ldb));
              std::vector<float> c(static_cast<std::size_t>(s.m * s.n));
              fill(a, seed++);
              fill(b, seed++);
              fill(c, seed++);
              std::vector<float> want = c;
              ref_gemm(ta, tb, s.m, s.n, s.k, alpha, a, lda, b, ldb, beta,
                       want, s.n);
              std::vector<float> scratch(static_cast<std::size_t>(
                  gemm_scratch_floats(ta, tb, s.m, s.n, s.k)));
              gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), lda, b.data(),
                   ldb, beta, c.data(), s.n, scratch.data());
              for (std::size_t i = 0; i < c.size(); ++i)
                ASSERT_NEAR(c[i], want[i],
                            1e-4f * (1.0f + std::fabs(want[i])))
                    << gemm_backend_name(be) << " m=" << s.m
                    << " n=" << s.n << " k=" << s.k << " ta=" << ta
                    << " tb=" << tb << " alpha=" << alpha
                    << " beta=" << beta << " i=" << i;
            }
          }
        }
      }
    }
  }
}

TEST_F(GemmBackendTest, SimdMatchesGenericUnderTolerance) {
  std::uint32_t seed = 77;
  for (const Shape& s : kShapes) {
    std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
    std::vector<float> b(static_cast<std::size_t>(s.k * s.n));
    fill(a, seed++);
    fill(b, seed++);
    set_gemm_backend(GemmBackend::kGeneric);
    std::vector<float> want(static_cast<std::size_t>(s.m * s.n), 0.0f);
    gemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.n,
         0.0f, want.data(), s.n, nullptr);
    for (GemmBackend be : supported_backends()) {
      if (be == GemmBackend::kGeneric) continue;
      set_gemm_backend(be);
      std::vector<float> got(static_cast<std::size_t>(s.m * s.n), 0.0f);
      gemm(false, false, s.m, s.n, s.k, 1.0f, a.data(), s.k, b.data(), s.n,
           0.0f, got.data(), s.n, nullptr);
      for (std::size_t i = 0; i < got.size(); ++i)
        ASSERT_NEAR(got[i], want[i], 1e-4f * (1.0f + std::fabs(want[i])))
            << gemm_backend_name(be) << " m=" << s.m << " n=" << s.n
            << " k=" << s.k << " i=" << i;
    }
  }
}

// The load-bearing contract: freeze-time packing must not change a
// single bit vs the unpacked call under the same backend — tail panels
// (zero-padded in the pack, masked loads unpacked) included.
TEST_F(GemmBackendTest, PrepackedBitIdenticalToUnpackedPerBackend) {
  std::uint32_t seed = 200;
  for (GemmBackend be : supported_backends()) {
    set_gemm_backend(be);
    for (const Shape& s : kShapes) {
      for (bool trans_b : {false, true}) {
        const index_t ldb = trans_b ? s.k : s.n;
        std::vector<float> a(static_cast<std::size_t>(s.m * s.k));
        std::vector<float> b(static_cast<std::size_t>(
            (trans_b ? s.n : s.k) * ldb));
        fill(a, seed++);
        fill(b, seed++);
        std::vector<float> c_plain(static_cast<std::size_t>(s.m * s.n),
                                   0.5f);
        std::vector<float> c_packed = c_plain;
        std::vector<float> scratch(static_cast<std::size_t>(
            gemm_scratch_floats(false, trans_b, s.m, s.n, s.k)));
        gemm(false, trans_b, s.m, s.n, s.k, 1.25f, a.data(), s.k, b.data(),
             ldb, 0.75f, c_plain.data(), s.n, scratch.data());
        PackedWeights pw;
        pw.pack(trans_b, s.k, s.n, b.data(), ldb);
        EXPECT_EQ(pw.backend(), be);
        gemm_prepacked(false, s.m, s.n, s.k, 1.25f, a.data(), s.k, pw,
                       0.75f, c_packed.data(), s.n);
        for (std::size_t i = 0; i < c_plain.size(); ++i)
          ASSERT_EQ(c_plain[i], c_packed[i])
              << gemm_backend_name(be) << " m=" << s.m << " n=" << s.n
              << " k=" << s.k << " trans_b=" << trans_b << " i=" << i;
      }
    }
  }
}

TEST_F(GemmBackendTest, PackLayoutFollowsBackend) {
  std::vector<float> b(static_cast<std::size_t>(7 * 20));
  fill(b, 9);
  for (GemmBackend be : supported_backends()) {
    set_gemm_backend(be);
    PackedWeights pw;
    pw.pack(false, 7, 20, b.data(), 20);
    EXPECT_EQ(pw.backend(), be);
    if (be == GemmBackend::kGeneric) {
      EXPECT_EQ(pw.layout(), PackLayout::kRowMajor);
      EXPECT_EQ(pw.size_floats(), 7 * 20);
    } else {
      EXPECT_EQ(pw.layout(), PackLayout::kTilePanel);
      // ceil(20/16) = 2 zero-padded panels of 7*16 floats.
      EXPECT_EQ(pw.size_floats(), 2 * 7 * 16);
    }
    // Either layout starts with op(B)(0, 0).
    EXPECT_EQ(pw.data()[0], b[0]);
  }
}

// A pack made under one backend stays valid after the active backend
// changes: gemm_prepacked dispatches on the pack's own tag.
TEST_F(GemmBackendTest, PackOutlivesBackendSwitch) {
  const auto backends = supported_backends();
  if (backends.size() < 2) GTEST_SKIP() << "single-backend build";
  const index_t m = 5, n = 33, k = 17;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  fill(a, 31);
  fill(b, 32);
  set_gemm_backend(backends[1]);
  PackedWeights pw;
  pw.pack(false, k, n, b.data(), n);
  std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
  gemm_prepacked(false, m, n, k, 1.0f, a.data(), k, pw, 0.0f, want.data(),
                 n);
  // Switch away; the pack must keep producing the exact same bits.
  set_gemm_backend(backends[0]);
  std::vector<float> got(static_cast<std::size_t>(m * n), 0.0f);
  gemm_prepacked(false, m, n, k, 1.0f, a.data(), k, pw, 0.0f, got.data(),
                 n);
  EXPECT_EQ(pw.backend(), backends[1]);
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], want[i]) << i;
}

TEST_F(GemmBackendTest, ThreadedBitIdenticalToInlineAndEngages) {
  const index_t m = 64, n = 96, k = 80;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  fill(a, 55);
  fill(b, 56);
  for (GemmBackend be : supported_backends()) {
    set_gemm_backend(be);
    set_gemm_threads(1);
    std::vector<float> want(static_cast<std::size_t>(m * n), 0.0f);
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         want.data(), n, nullptr);
    set_gemm_threads(3);
    set_gemm_thread_min_work(1);  // force the pool for this shape
    const long long before = gemm_threaded_dispatches();
    std::vector<float> got(static_cast<std::size_t>(m * n), 0.0f);
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         got.data(), n, nullptr);
    EXPECT_GT(gemm_threaded_dispatches(), before)
        << gemm_backend_name(be);
    for (std::size_t i = 0; i < got.size(); ++i)
      ASSERT_EQ(got[i], want[i]) << gemm_backend_name(be) << " i=" << i;
  }
}

TEST_F(GemmBackendTest, ThresholdAndSerialScopeSuppressThreading) {
  const index_t m = 32, n = 32, k = 32;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  fill(a, 71);
  fill(b, 72);
  set_gemm_threads(2);
  // Below the threshold: inline.
  set_gemm_thread_min_work(1LL << 40);
  long long before = gemm_threaded_dispatches();
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       c.data(), n, nullptr);
  EXPECT_EQ(gemm_threaded_dispatches(), before);
  // Above the threshold but inside a GemmSerialScope: still inline.
  set_gemm_thread_min_work(1);
  {
    GemmSerialScope serial;
    before = gemm_threaded_dispatches();
    gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n, nullptr);
    EXPECT_EQ(gemm_threaded_dispatches(), before);
  }
  // Scope gone: engages again.
  before = gemm_threaded_dispatches();
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       c.data(), n, nullptr);
  EXPECT_GT(gemm_threaded_dispatches(), before);
}

TEST_F(GemmBackendTest, DotAndAxpyMatchGenericPerBackend) {
  for (index_t n : {index_t{1}, index_t{7}, index_t{8}, index_t{31},
                    index_t{64}, index_t{257}}) {
    std::vector<float> x(static_cast<std::size_t>(n));
    std::vector<float> y(static_cast<std::size_t>(n));
    fill(x, static_cast<std::uint32_t>(400 + n));
    fill(y, static_cast<std::uint32_t>(500 + n));
    set_gemm_backend(GemmBackend::kGeneric);
    const float dot_want = dot(x.data(), y.data(), n);
    std::vector<float> axpy_want = y;
    axpy(n, 0.3f, x.data(), axpy_want.data());
    for (GemmBackend be : supported_backends()) {
      if (be == GemmBackend::kGeneric) continue;
      set_gemm_backend(be);
      EXPECT_NEAR(dot(x.data(), y.data(), n), dot_want,
                  1e-4f * (1.0f + std::fabs(dot_want)))
          << gemm_backend_name(be) << " n=" << n;
      std::vector<float> axpy_got = y;
      axpy(n, 0.3f, x.data(), axpy_got.data());
      for (std::size_t i = 0; i < axpy_got.size(); ++i)
        ASSERT_NEAR(axpy_got[i], axpy_want[i],
                    1e-5f * (1.0f + std::fabs(axpy_want[i])))
            << gemm_backend_name(be) << " n=" << n << " i=" << i;
    }
  }
}

TEST_F(GemmBackendTest, HeapPackCounterCountsAllocatingOverloadOnly) {
  const index_t m = 4, n = 5, k = 3;
  std::vector<float> a(static_cast<std::size_t>(m * k));
  std::vector<float> b(static_cast<std::size_t>(k * n));
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  fill(a, 90);
  fill(b, 91);
  long long before = gemm_heap_pack_calls();
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       c.data(), n, nullptr);  // scratch overload: not counted
  EXPECT_EQ(gemm_heap_pack_calls(), before);
  gemm(false, false, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       c.data(), n);  // allocating overload: counted
  EXPECT_EQ(gemm_heap_pack_calls(), before + 1);
}

}  // namespace
}  // namespace qdnn::linalg
