// LayerNorm over the last dimension of [N, D] activations — the
// normalization used by the Transformer blocks (Table II experiments).
#pragma once

#include "nn/module.h"

namespace qdnn::nn {

class LayerNorm : public Module {
 public:
  explicit LayerNorm(index_t dim, float eps = 1e-5f,
                     std::string name = "ln");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  void freeze() override {
    cached_xhat_ = Tensor{};
    cached_invstd_ = Tensor{};
    Module::freeze();
  }
  std::vector<Parameter*> parameters() override;
  std::string name() const override { return name_; }

 private:
  index_t dim_;
  float eps_;
  std::string name_;
  Parameter gamma_;  // [D]
  Parameter beta_;   // [D]
  Tensor cached_xhat_;
  Tensor cached_invstd_;  // [N]
};

}  // namespace qdnn::nn
