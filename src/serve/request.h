// Request/result types for the continuous-batching serving layer.
//
// A Request is one decode job: a source row plus decode policy (step
// budget, sampling head).  The scheduler assigns ids at submit() and
// returns RequestResults after retirement; tick counters let callers
// derive queueing delay (admit − submit), decode time (finish − admit)
// and end-to-end latency (finish − submit) in batch-step units.
#pragma once

#include <vector>

#include "core/tensor.h"
#include "serve/sampling.h"

namespace qdnn::serve {

struct Request {
  // Source token ids, [Ts] or [1, Ts]; Ts must fit the session's
  // configured max_src.
  Tensor src_ids;
  // Valid (non-pad) source positions; 0 = all Ts valid.
  index_t src_length = 0;
  // Most tokens to emit; 0 = the scheduler's max_steps.  Must not exceed
  // max_steps (the self-attention ring capacity).
  index_t max_new_tokens = 0;
  // Per-request sampling head; greedy by default.
  SamplingConfig sampling;
};

enum class FinishReason {
  kEos,     // the model emitted eos
  kLength,  // the step budget ran out
};

struct RequestResult {
  index_t id = -1;
  // Emitted token ids, bos/eos excluded — for a greedy request, exactly
  // Transformer::greedy_decode of that source alone.
  std::vector<index_t> tokens;
  FinishReason reason = FinishReason::kLength;
  // Batch ticks this request spent decoding (== steps consumed).
  index_t decode_steps = 0;
  index_t submit_tick = 0;  // scheduler tick count at submit()
  index_t admit_tick = 0;   // tick at admission into a batch row
  index_t finish_tick = 0;  // tick at retirement
};

}  // namespace qdnn::serve
