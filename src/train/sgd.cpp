#include "train/sgd.h"

#include <cmath>

namespace qdnn::train {

Sgd::Sgd(std::vector<nn::Parameter*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (const nn::Parameter* p : params_)
    velocity_.emplace_back(p->value.shape());
}

double Sgd::grad_norm() const {
  double acc = 0.0;
  for (const nn::Parameter* p : params_)
    acc += static_cast<double>(p->grad.squared_norm());
  return std::sqrt(acc);
}

void Sgd::step() {
  float clip_scale = 1.0f;
  if (config_.clip_norm > 0.0f) {
    const double norm = grad_norm();
    if (!std::isfinite(norm)) {
      // A single overflowing batch must not poison the weights (the
      // division below would turn every parameter into NaN).  Skip the
      // step; the caller's divergence detection still sees genuinely
      // unstable *forward* dynamics (Fig. 6).
      return;
    }
    if (norm > config_.clip_norm)
      clip_scale = static_cast<float>(config_.clip_norm / norm);
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    const float lr = config_.lr * p.lr_scale;
    const float wd = p.decay ? config_.weight_decay : 0.0f;
    for (index_t j = 0; j < p.value.numel(); ++j) {
      const float g = p.grad[j] * clip_scale + wd * p.value[j];
      v[j] = config_.momentum * v[j] + g;
      p.value[j] -= lr * v[j];
    }
  }
}

void Sgd::zero_grad() {
  for (nn::Parameter* p : params_) p->zero_grad();
}

}  // namespace qdnn::train
