// Continuous vs static batching under Poisson load.
//
// A trace of decode requests (Poisson arrivals, mixed source lengths,
// mixed step budgets) is served two ways over the same model:
//
//   * static     — the PR 3 pattern: gangs of up to max_batch requests
//                  prime together and the whole batch occupies its KV
//                  rings until the SLOWEST row finishes; a freed slot
//                  only refills when the next gang starts.
//   * continuous — serve::BatchScheduler: requests are admitted into
//                  free rows mid-flight (per-row prime), every tick steps
//                  the whole batch at per-row ring positions, retired
//                  rows refill immediately.
//
// Both modes emit bit-identical greedy tokens per request (asserted), so
// the comparison is pure scheduling: tokens/sec tracks row occupancy,
// and per-request latency (p50/p99, in ticks = batch steps and in ms via
// the measured step cost) shows the queueing effect of gang scheduling.
// `--smoke` runs a small trace end-to-end — the CI serve-regression gate.
#include <cstdio>
#include <cstring>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <vector>

#include "bench_util.h"
#include "serve/scheduler.h"

using namespace qdnn;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

namespace {

struct TraceRequest {
  Tensor src;
  index_t src_length;
  index_t budget;
  index_t arrival_tick;
};

struct Measured {
  double tokens_per_sec = 0.0;
  double p50_ticks = 0.0, p99_ticks = 0.0;
  double p50_ms = 0.0, p99_ms = 0.0;
  double occupancy = 0.0;
  index_t total_tokens = 0;
  std::map<index_t, std::vector<index_t>> outputs;  // trace idx → tokens
};

models::TransformerConfig model_config() {
  models::TransformerConfig config;
  config.src_vocab = 256;
  config.tgt_vocab = 256;
  config.d_model = 48;
  config.n_heads = 4;
  config.n_layers = 2;
  config.d_ff = 96;
  config.proj_dim = 48;
  config.max_len = 32;
  config.dropout = 0.0f;
  config.seed = 17;
  return config;
}

// Poisson arrivals (exponential inter-arrival at `rate` requests per
// tick), ragged sources, mixed budgets — the mixed-length traffic where
// gang scheduling leaves rows idle.
std::vector<TraceRequest> make_trace(index_t count, double rate,
                                     index_t max_src, index_t max_steps,
                                     std::uint64_t seed) {
  Rng rng(seed);
  std::vector<TraceRequest> trace;
  double arrival = 0.0;
  for (index_t i = 0; i < count; ++i) {
    arrival += -std::log(1.0 - rng.uniform()) / rate;
    TraceRequest r;
    const index_t ts = 4 + rng.uniform_int(max_src - 4 + 1);
    r.src = Tensor{Shape{1, ts}};
    for (index_t j = 0; j < ts; ++j)
      r.src[j] = static_cast<float>(3 + rng.uniform_int(253));
    r.src_length = ts;
    r.budget = 4 + rng.uniform_int(max_steps - 4 + 1);
    r.arrival_tick = static_cast<index_t>(arrival);
    trace.push_back(std::move(r));
  }
  return trace;
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0)
      .count();
}

constexpr index_t kBos = 1, kEos = 2;

Measured run_continuous(models::Transformer& model,
                        const std::vector<TraceRequest>& trace,
                        index_t max_batch, index_t max_steps) {
  serve::BatchSchedulerConfig config;
  config.session.max_batch = max_batch;
  config.session.max_steps = max_steps;
  config.bos = kBos;
  config.eos = kEos;
  serve::BatchScheduler scheduler(model, config);

  std::map<index_t, index_t> id_to_index;
  std::vector<double> latency_ticks;
  Measured m;
  std::size_t next = 0, done = 0;
  index_t stepped_ticks = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < trace.size()) {
    while (next < trace.size() &&
           trace[next].arrival_tick <= scheduler.ticks()) {
      serve::Request req;
      req.src_ids = trace[next].src;
      req.src_length = trace[next].src_length;
      req.max_new_tokens = trace[next].budget;
      id_to_index[scheduler.submit(std::move(req))] =
          static_cast<index_t>(next);
      ++next;
    }
    if (scheduler.step() > 0) ++stepped_ticks;
    for (serve::RequestResult& r : scheduler.take_results()) {
      latency_ticks.push_back(
          static_cast<double>(r.finish_tick - r.submit_tick));
      m.outputs[id_to_index.at(r.id)] = std::move(r.tokens);
      ++done;
    }
  }
  const double elapsed = seconds_since(t0);
  const double step_ms =
      stepped_ticks > 0 ? 1e3 * elapsed / stepped_ticks : 0.0;
  m.total_tokens = scheduler.total_tokens();
  m.tokens_per_sec = m.total_tokens / elapsed;
  m.p50_ticks = percentile(latency_ticks, 0.50);
  m.p99_ticks = percentile(latency_ticks, 0.99);
  m.p50_ms = m.p50_ticks * step_ms;
  m.p99_ms = m.p99_ticks * step_ms;
  m.occupancy = scheduler.mean_occupancy();
  return m;
}

Measured run_static(models::Transformer& model,
                    const std::vector<TraceRequest>& trace,
                    index_t max_batch, index_t max_steps) {
  runtime::DecodeSessionConfig sc;
  sc.max_batch = max_batch;
  sc.max_steps = max_steps;
  runtime::DecodeSession session(model, sc);

  std::vector<double> latency_ticks;
  Measured m;
  index_t tick = 0, stepped_ticks = 0, occupancy_sum = 0;
  std::size_t next = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (next < trace.size()) {
    if (trace[next].arrival_tick > tick) {
      ++tick;  // idle: the gang driver waits for the next arrival
      continue;
    }
    // Gang admission: up to max_batch requests that have arrived, padded
    // to one [n, Ts] batch.  No mid-gang refill — the static pattern.
    std::vector<std::size_t> gang;
    while (next < trace.size() && trace[next].arrival_tick <= tick &&
           static_cast<index_t>(gang.size()) < max_batch)
      gang.push_back(next++);
    const index_t n = static_cast<index_t>(gang.size());
    index_t ts = 0;
    for (const std::size_t g : gang)
      ts = std::max(ts, trace[g].src.dim(1));
    Tensor src{Shape{n, ts}};
    std::vector<index_t> lengths;
    for (index_t r = 0; r < n; ++r) {
      const TraceRequest& req = trace[gang[static_cast<std::size_t>(r)]];
      const index_t len = req.src.dim(1);
      for (index_t j = 0; j < len; ++j) src.at(r, j) = req.src[j];
      lengths.push_back(req.src_length);
    }
    session.prime(src, lengths);

    std::vector<index_t> feed(static_cast<std::size_t>(n), kBos);
    std::vector<char> row_done(static_cast<std::size_t>(n), 0);
    index_t live = n;
    while (live > 0) {
      const std::vector<index_t>& out = session.step(feed);
      ++tick;
      ++stepped_ticks;
      occupancy_sum += live;
      for (index_t r = 0; r < n; ++r) {
        const auto ri = static_cast<std::size_t>(r);
        if (row_done[ri]) {
          feed[ri] = kEos;  // finished rows ride the gang, uncounted
          continue;
        }
        const TraceRequest& req =
            trace[gang[static_cast<std::size_t>(r)]];
        auto& tokens = m.outputs[static_cast<index_t>(gang[ri])];
        bool finished = false;
        if (out[ri] == kEos) {
          finished = true;
        } else {
          tokens.push_back(out[ri]);
          ++m.total_tokens;
          feed[ri] = out[ri];
          finished = static_cast<index_t>(tokens.size()) >= req.budget;
        }
        if (finished) {
          row_done[ri] = 1;
          --live;
          latency_ticks.push_back(
              static_cast<double>(tick - req.arrival_tick));
        }
      }
    }
  }
  const double elapsed = seconds_since(t0);
  const double step_ms =
      stepped_ticks > 0 ? 1e3 * elapsed / stepped_ticks : 0.0;
  m.tokens_per_sec = m.total_tokens / elapsed;
  m.p50_ticks = percentile(latency_ticks, 0.50);
  m.p99_ticks = percentile(latency_ticks, 0.99);
  m.p50_ms = m.p50_ticks * step_ms;
  m.p99_ms = m.p99_ticks * step_ms;
  m.occupancy = stepped_ticks > 0
                    ? static_cast<double>(occupancy_sum) / stepped_ticks
                    : 0.0;
  return m;
}

void report(const char* label, index_t batch, const Measured& m,
            CsvWriter& csv, index_t requests) {
  print_row({label, fmt(m.tokens_per_sec, 0), fmt(m.occupancy, 2),
             fmt(m.p50_ticks, 0) + " / " + fmt(m.p99_ticks, 0),
             fmt(m.p50_ms, 1) + " / " + fmt(m.p99_ms, 1)});
  csv.write_row(std::vector<std::string>{
      label, std::to_string(requests), std::to_string(batch),
      fmt(m.tokens_per_sec, 0), fmt(m.occupancy, 2), fmt(m.p50_ticks, 0),
      fmt(m.p99_ticks, 0), fmt(m.p50_ms, 2), fmt(m.p99_ms, 2)});
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const int scale = smoke ? 1 : qdnn::bench::bench_scale();
  const index_t requests = smoke ? 10 : 48 * scale;
  const index_t max_batch = smoke ? 2 : 8;
  const index_t max_steps = smoke ? 10 : 32;
  const double rate = smoke ? 1.0 : 0.6;  // arrivals per batch step

  models::Transformer model(model_config());
  model.set_training(false);

  print_header("Continuous vs static batching (Poisson arrivals, mixed "
               "budgets)");
  std::printf("requests %lld, batch %lld, max_steps %lld, arrival rate "
              "%.2f/step\n\n",
              static_cast<long long>(requests),
              static_cast<long long>(max_batch),
              static_cast<long long>(max_steps), rate);

  const auto trace =
      make_trace(requests, rate, model_config().max_len - 4, max_steps,
                 /*seed=*/97);

  CsvWriter csv(qdnn::bench::results_dir() + "/serve_bench.csv",
                {"mode", "requests", "batch", "tokens_s", "occupancy",
                 "p50_ticks", "p99_ticks", "p50_ms", "p99_ms"});
  print_row({"mode", "tokens/s", "occupancy", "p50/p99 ticks",
             "p50/p99 ms"});
  print_rule();

  const Measured st = run_static(model, trace, max_batch, max_steps);
  const Measured ct = run_continuous(model, trace, max_batch, max_steps);
  report("static", max_batch, st, csv, requests);
  report("continuous", max_batch, ct, csv, requests);
  print_rule();

  // Both modes are greedy and solo-equivalent, so the outputs must be
  // bit-identical request by request — scheduling must never change
  // what a request decodes.
  QDNN_CHECK(st.outputs.size() == trace.size() &&
                 ct.outputs.size() == trace.size(),
             "serve bench: dropped requests (static "
                 << st.outputs.size() << ", continuous "
                 << ct.outputs.size() << " of " << trace.size() << ")");
  for (const auto& [idx, tokens] : ct.outputs)
    QDNN_CHECK(st.outputs.at(idx) == tokens,
               "serve bench: request " << idx
                                       << " diverged between modes");
  QDNN_CHECK(st.total_tokens == ct.total_tokens,
             "serve bench: token counts diverged");

  std::printf(
      "Identical per-request tokens in both modes (%lld total).\n"
      "Expected shape: the continuous scheduler refills retired rows\n"
      "mid-flight, so occupancy (and tokens/sec) stays near the batch\n"
      "width while static gangs decay to the slowest row; request\n"
      "latency drops because nothing waits for a whole gang to finish.\n",
      static_cast<long long>(ct.total_tokens));
  return 0;
}
