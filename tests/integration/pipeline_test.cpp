// Cross-module integration: the full lifecycle a downstream user runs —
//   train → checkpoint → reload into a fresh process-equivalent model →
//   Λ-prune → quantize → evaluate —
// exercising trainer, checkpoint (with BN buffers), lambda_prune and
// quantize together on a real (small) quadratic ResNet.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "models/resnet.h"
#include "nn/checkpoint.h"
#include "quantize/quantize_model.h"
#include "train/lambda_prune.h"
#include "train/trainer.h"

namespace qdnn {
namespace {

std::string temp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("qdnn_pipe_" + name))
      .string();
}

class PipelineTest : public ::testing::Test {
 protected:
  static constexpr index_t kClasses = 4;

  models::ResNetConfig config() const {
    models::ResNetConfig c;
    c.depth = 8;
    c.num_classes = kClasses;
    c.image_size = 12;
    c.base_width = 10;
    c.spec = models::NeuronSpec::proposed(9, /*lambda_lr=*/0.1f);
    c.seed = 91;
    return c;
  }

  data::SyntheticImageConfig data_config() const {
    data::SyntheticImageConfig d;
    d.num_classes = kClasses;
    d.image_size = 12;
    d.noise_std = 0.3f;
    return d;
  }
};

TEST_F(PipelineTest, TrainCheckpointPruneQuantizeEvaluate) {
  const auto train_set = data::make_synthetic_images(data_config(), 160, 71);
  const auto test_set = data::make_synthetic_images(data_config(), 80, 72);

  // --- train ---------------------------------------------------------
  auto net = models::make_cifar_resnet(config());
  train::TrainerConfig tc;
  tc.epochs = 4;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.clip_norm = 5.0f;
  tc.augment_pad = 1;
  train::Trainer trainer(*net, tc);
  const auto history = trainer.fit(train_set, test_set);
  ASSERT_FALSE(history.empty());
  const double acc_trained = trainer.evaluate(test_set).test_accuracy;
  ASSERT_GT(acc_trained, 1.5 / kClasses)  // well above chance
      << "training failed — integration test is void";

  // --- checkpoint → fresh model --------------------------------------
  const std::string path = temp_path("resnet.bin");
  nn::save_checkpoint(*net, path);
  auto restored = models::make_cifar_resnet(config());
  nn::load_checkpoint(*restored, path);
  std::remove(path.c_str());
  train::Trainer eval0(*restored, tc);
  EXPECT_NEAR(eval0.evaluate(test_set).test_accuracy, acc_trained, 1e-9);

  // --- Λ-prune (gentle) ------------------------------------------------
  index_t zeroed = 0;
  for (const auto& s : train::prune_lambdas(*restored, 0.02))
    zeroed += s.zeroed;
  EXPECT_GT(zeroed, 0);
  train::Trainer eval1(*restored, tc);
  const double acc_pruned = eval1.evaluate(test_set).test_accuracy;
  EXPECT_GT(acc_pruned, acc_trained - 0.10);

  // --- int8 fake quantization -----------------------------------------
  quantize::QuantizeConfig qc;
  qc.weight_bits = 8;
  quantize::quantize_parameters(*restored, qc);
  const auto report = quantize::storage_report(*restored, qc);
  EXPECT_GT(report.compression(), 2.0);
  train::Trainer eval2(*restored, tc);
  const double acc_final = eval2.evaluate(test_set).test_accuracy;
  EXPECT_GT(acc_final, acc_pruned - 0.10);
}

TEST_F(PipelineTest, CheckpointSurvivesPrunedAndQuantizedState) {
  // Save/load must round-trip a model AFTER pruning+quantization too —
  // downstream users checkpoint deployment-ready weights.
  const auto train_set = data::make_synthetic_images(data_config(), 96, 73);
  const auto test_set = data::make_synthetic_images(data_config(), 48, 74);
  auto net = models::make_cifar_resnet(config());
  train::TrainerConfig tc;
  tc.epochs = 2;
  tc.batch_size = 16;
  tc.lr = 0.05f;
  tc.clip_norm = 5.0f;
  train::Trainer trainer(*net, tc);
  trainer.fit(train_set, test_set);
  train::prune_lambdas(*net, 0.05);
  quantize::quantize_parameters(*net, quantize::QuantizeConfig{});

  const std::string path = temp_path("deployed.bin");
  nn::save_checkpoint(*net, path);
  auto restored = models::make_cifar_resnet(config());
  nn::load_checkpoint(*restored, path);
  std::remove(path.c_str());

  net->set_training(false);
  restored->set_training(false);
  Tensor x{Shape{2, 3, 12, 12}};
  Rng rng(99);
  rng.fill_normal(x, 0.0f, 1.0f);
  EXPECT_EQ(max_abs_diff(net->forward(x), restored->forward(x)), 0.0f);
}

}  // namespace
}  // namespace qdnn
