#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "core/check.h"

namespace qdnn::obs {

namespace detail {

namespace {
bool trace_env_enabled() {
  const char* env = std::getenv("QDNN_TRACE");
  return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

index_t trace_env_sample() {
  const char* env = std::getenv("QDNN_TRACE_SAMPLE");
  if (env == nullptr || env[0] == '\0') return 1;
  const long n = std::strtol(env, nullptr, 10);
  return n >= 1 ? static_cast<index_t>(n) : 1;
}
}  // namespace

std::atomic<bool> g_trace_enabled{trace_env_enabled()};
std::atomic<index_t> g_trace_sample{trace_env_sample()};

}  // namespace detail

const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kSubmit:
      return "submit";
    case TraceEvent::kQueueAdmit:
      return "queue_admit";
    case TraceEvent::kPrefillStart:
      return "prefill_start";
    case TraceEvent::kPrefillEnd:
      return "prefill_end";
    case TraceEvent::kCommit:
      return "commit";
    case TraceEvent::kFirstToken:
      return "first_token";
    case TraceEvent::kStep:
      return "step";
    case TraceEvent::kRetire:
      return "retire";
    case TraceEvent::kCancel:
      return "cancel";
    case TraceEvent::kShed:
      return "shed";
    case TraceEvent::kPrefixHit:
      return "prefix_hit";
    case TraceEvent::kPreempt:
      return "preempt";
  }
  return "unknown";
}

void set_trace_enabled(bool on) {
  detail::g_trace_enabled.store(on, std::memory_order_relaxed);
}

void set_trace_sample(index_t n) {
  detail::g_trace_sample.store(n >= 1 ? n : 1, std::memory_order_relaxed);
}

long long now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRing::TraceRing(index_t capacity) : capacity_(capacity) {
  QDNN_CHECK(capacity > 0, "TraceRing capacity must be positive, got "
                               << capacity);
  slots_.reset(new Slot[static_cast<std::size_t>(capacity)]);
}

void TraceRing::record_always(index_t id, TraceEvent event, index_t arg) {
  const long long ticket = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<std::size_t>(ticket % capacity_)];
  slot.seq.store(-(ticket + 1), std::memory_order_relaxed);
  slot.t_ns.store(now_ns(), std::memory_order_relaxed);
  slot.id.store(static_cast<long long>(id), std::memory_order_relaxed);
  slot.event.store(static_cast<std::int32_t>(event),
                   std::memory_order_relaxed);
  slot.arg.store(static_cast<long long>(arg), std::memory_order_relaxed);
  slot.seq.store(ticket + 1, std::memory_order_release);
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(static_cast<std::size_t>(capacity_));
  for (index_t i = 0; i < capacity_; ++i) {
    const Slot& slot = slots_[static_cast<std::size_t>(i)];
    const long long before = slot.seq.load(std::memory_order_acquire);
    if (before <= 0) continue;  // never written, or write in progress
    TraceRecord rec;
    rec.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    rec.id = static_cast<index_t>(slot.id.load(std::memory_order_relaxed));
    rec.event =
        static_cast<TraceEvent>(slot.event.load(std::memory_order_relaxed));
    rec.arg = static_cast<index_t>(slot.arg.load(std::memory_order_relaxed));
    const long long after = slot.seq.load(std::memory_order_acquire);
    if (after != before) continue;  // overwritten while reading: torn
    rec.seq = before - 1;
    out.push_back(rec);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceRecord& a, const TraceRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

}  // namespace qdnn::obs
