// BatchNorm2d over [N, C, H, W]: per-channel normalization with learned
// affine (γ, β) and running statistics for inference.
//
// Every ResNet in the paper (linear and quadratic) places BatchNorm after
// each conv; for the proposed neuron the k+1 output channels per filter
// are normalized independently, which keeps the fᵏ feature channels on the
// same scale as the quadratic output y.
#pragma once

#include "nn/module.h"

namespace qdnn::nn {

class BatchNorm2d : public Module {
 public:
  explicit BatchNorm2d(index_t channels, float momentum = 0.1f,
                       float eps = 1e-5f, std::string name = "bn");

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;

  // v2 (eval mode only): the layer is a fixed per-channel affine map of
  // the running statistics — no batch moments, no caching.
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;

  void freeze() override {
    cached_xhat_ = Tensor{};
    cached_invstd_ = Tensor{};
    Module::freeze();
  }
  std::vector<Parameter*> parameters() override;
  std::vector<NamedBuffer> buffers() override {
    return {{name_ + ".running_mean", &running_mean_},
            {name_ + ".running_var", &running_var_}};
  }
  std::string name() const override { return name_; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }

 private:
  index_t channels_;
  float momentum_;
  float eps_;
  std::string name_;
  Parameter gamma_;  // [C]
  Parameter beta_;   // [C]
  Tensor running_mean_;
  Tensor running_var_;

  // Cached by forward for backward.  In eval mode the layer is a fixed
  // affine map (running stats), so backward reduces to the scale term —
  // supported so frozen-BN fine-tuning and eval-mode gradient checks work.
  Tensor cached_xhat_;   // normalized input
  Tensor cached_invstd_; // [C]
  index_t cached_count_ = 0;
  bool cached_training_ = true;  // mode of the last forward
};

}  // namespace qdnn::nn
