#include "data/synthetic_images.h"

#include <cmath>
#include <numbers>

namespace qdnn::data {

namespace {

// Low-frequency shape masks, one per shape id, evaluated on normalized
// coordinates u, v ∈ [−1, 1].
float shape_mask(index_t shape_id, float u, float v) {
  const float r = std::sqrt(u * u + v * v);
  switch (shape_id % 6) {
    case 0:  // disc
      return r < 0.55f ? 1.0f : 0.0f;
    case 1:  // ring
      return (r > 0.35f && r < 0.7f) ? 1.0f : 0.0f;
    case 2:  // box
      return (std::fabs(u) < 0.5f && std::fabs(v) < 0.5f) ? 1.0f : 0.0f;
    case 3:  // horizontal bar
      return std::fabs(v) < 0.28f ? 1.0f : 0.0f;
    case 4:  // cross
      return (std::fabs(u) < 0.22f || std::fabs(v) < 0.22f) ? 1.0f : 0.0f;
    default:  // diagonal wedge
      return (u + v > 0.1f) ? 1.0f : 0.0f;
  }
}

struct ClassParams {
  index_t shape_id;
  float theta;      // texture orientation
  float freq;       // texture spatial frequency (cycles per image)
  float color[3];   // weak per-channel tint
};

ClassParams class_params(index_t label, index_t num_classes,
                         index_t channels) {
  ClassParams p;
  p.shape_id = label % 6;
  // Orientation/frequency walk the classes through distinct textures.
  p.theta = static_cast<float>(label) * 0.61803f *
            std::numbers::pi_v<float>;
  p.freq = 2.5f + 1.7f * static_cast<float>(label % 5);
  for (index_t c = 0; c < 3; ++c) {
    // Small class-dependent tint (kept weak so color alone is not enough
    // to classify; +-0.08 against noise_std ~0.3).
    p.color[c] = 0.08f * std::sin(1.7f * static_cast<float>(label) +
                                  2.1f * static_cast<float>(c));
  }
  (void)num_classes;
  (void)channels;
  return p;
}

void render_sample(const SyntheticImageConfig& config, index_t label,
                   float phase, float jitter_u, float jitter_v, Rng* noise,
                   float* out) {
  const index_t hw = config.image_size;
  const ClassParams p = class_params(label, config.num_classes,
                                     config.channels);
  const float ct = std::cos(p.theta), st = std::sin(p.theta);
  for (index_t c = 0; c < config.channels; ++c) {
    float* plane = out + c * hw * hw;
    for (index_t y = 0; y < hw; ++y) {
      const float v = 2.0f * static_cast<float>(y) / (hw - 1) - 1.0f;
      for (index_t x = 0; x < hw; ++x) {
        const float u = 2.0f * static_cast<float>(x) / (hw - 1) - 1.0f;
        const float mask =
            shape_mask(p.shape_id, u - jitter_u, v - jitter_v);
        // Oriented grating with random phase: zero-mean texture whose
        // energy (not mean) carries the class.
        const float coord = ct * u + st * v;
        const float grating =
            std::sin(p.freq * std::numbers::pi_v<float> * coord + phase);
        float value = config.shape_amp * mask +
                      config.texture_amp * mask * grating +
                      p.color[c % 3];
        if (noise)
          value += static_cast<float>(
              noise->normal(0.0, config.noise_std));
        plane[y * hw + x] = value;
      }
    }
  }
}

}  // namespace

ImageDataset make_synthetic_images(const SyntheticImageConfig& config,
                                   index_t count, std::uint64_t seed) {
  QDNN_CHECK(count > 0, "make_synthetic_images: count must be positive");
  QDNN_CHECK(config.num_classes > 0 && config.image_size > 1,
             "make_synthetic_images: bad config");
  Rng rng(seed);
  ImageDataset ds;
  ds.num_classes = config.num_classes;
  ds.images = Tensor{Shape{count, config.channels, config.image_size,
                           config.image_size}};
  ds.labels.resize(static_cast<std::size_t>(count));

  const std::vector<index_t> order = rng.permutation(count);
  const index_t plane = config.channels * config.image_size *
                        config.image_size;
  for (index_t i = 0; i < count; ++i) {
    // Balanced labels in shuffled order.
    const index_t label = order[static_cast<std::size_t>(i)] %
                          config.num_classes;
    ds.labels[static_cast<std::size_t>(i)] = label;
    const float phase = static_cast<float>(
        rng.uniform(0.0, 2.0 * std::numbers::pi));
    const float ju = static_cast<float>(rng.uniform(-0.25, 0.25));
    const float jv = static_cast<float>(rng.uniform(-0.25, 0.25));
    render_sample(config, label, phase, ju, jv, &rng,
                  ds.images.data() + i * plane);
  }
  return ds;
}

Tensor render_class_prototype(const SyntheticImageConfig& config,
                              index_t label, std::uint64_t seed) {
  Rng rng(seed);
  Tensor img{Shape{config.channels, config.image_size, config.image_size}};
  const float phase = static_cast<float>(
      rng.uniform(0.0, 2.0 * std::numbers::pi));
  render_sample(config, label, phase, 0.0f, 0.0f, nullptr, img.data());
  return img;
}

}  // namespace qdnn::data
