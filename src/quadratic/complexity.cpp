#include "quadratic/complexity.h"

namespace qdnn::quadratic {

NeuronCost neuron_cost(const NeuronSpec& spec, index_t n) {
  QDNN_CHECK(n > 0, "neuron_cost: fan-in must be positive");
  const index_t k = spec.rank;
  NeuronCost c;
  switch (spec.kind) {
    case NeuronKind::kLinear:
      // wᵀx
      c.params = n;
      c.macs = n;
      break;
    case NeuronKind::kGeneral:
      // xᵀMx + wᵀx: M has n², w has n; quadratic form costs n² (with the
      // running xᵀ· accumulation) plus 2n for the outer products/linear.
      c.params = n * n + n;
      c.macs = n * n + 2 * n;
      break;
    case NeuronKind::kPure:
      // xᵀMx
      c.params = n * n;
      c.macs = n * n + n;
      break;
    case NeuronKind::kBuKarpatne:
      // (w₁ᵀx)(w₂ᵀx) + w₁ᵀx — w₁ is reused by the linear term.
      c.params = 2 * n;
      c.macs = 2 * n;
      break;
    case NeuronKind::kLowRank:
      // xᵀQ₁Q₂ᵀx + wᵀx: two n×k factors plus w; evaluating via
      // a = Q₁ᵀx, b = Q₂ᵀx costs 2kn, plus k for a·b (Table I reports
      // O(2kn + k), folding the linear term into the constant).
      c.params = 2 * k * n + n;
      c.macs = 2 * k * n + k;
      break;
    case NeuronKind::kQuad1:
      // (w₁ᵀx)(w₂ᵀx) + w₃ᵀ(x⊙x): 3 weight vectors; the element-wise
      // square costs an extra n multiplies.
      c.params = 3 * n;
      c.macs = 4 * n;
      break;
    case NeuronKind::kQuad2:
      // (w₁ᵀx)(w₂ᵀx) + w₃ᵀx
      c.params = 3 * n;
      c.macs = 3 * n;
      break;
    case NeuronKind::kKervolution:
      // (wᵀx + c)^d — same trainable parameters as a linear neuron.
      c.params = n;
      c.macs = n + spec.kerv_degree;
      break;
    case NeuronKind::kProposed:
      // {xᵀQᵏΛᵏ(Qᵏ)ᵀx + wᵀx, (Qᵏ)ᵀx}: Qᵏ is n×k, Λᵏ diagonal (k), w is
      // n.  MACs: n (linear) + kn (fᵏ = (Qᵏ)ᵀx) + 2k ((fᵏ)ᵀΛᵏfᵏ).
      // Eq. (9) and Eq. (10) of the paper.
      c.params = (k + 1) * n + k;
      c.macs = (k + 1) * n + 2 * k;
      c.outputs = k + 1;
      break;
    case NeuronKind::kProposedSumOnly:
      // Same form and cost as the proposed neuron, but fᵏ is not emitted —
      // a single output carries the whole (k+1)n + k budget.
      c.params = (k + 1) * n + k;
      c.macs = (k + 1) * n + 2 * k;
      break;
  }
  return c;
}

double params_per_output(const NeuronSpec& spec, index_t n) {
  const NeuronCost c = neuron_cost(spec, n);
  return static_cast<double>(c.params) / static_cast<double>(c.outputs);
}

double macs_per_output(const NeuronSpec& spec, index_t n) {
  const NeuronCost c = neuron_cost(spec, n);
  return static_cast<double>(c.macs) / static_cast<double>(c.outputs);
}

LayerCost conv_layer_cost(const NeuronSpec& spec, index_t in_channels,
                          index_t kernel, index_t filters,
                          index_t spatial_positions) {
  const index_t n = in_channels * kernel * kernel;
  const NeuronCost c = neuron_cost(spec, n);
  LayerCost layer;
  layer.params = filters * c.params;
  layer.macs = filters * c.macs * spatial_positions;
  layer.out_channels = filters * c.outputs;
  return layer;
}

std::string params_formula(const NeuronSpec& spec) {
  switch (spec.kind) {
    case NeuronKind::kLinear: return "O(n)";
    case NeuronKind::kGeneral: return "O(n^2 + n)";
    case NeuronKind::kPure: return "O(n^2)";
    case NeuronKind::kBuKarpatne: return "O(2n)";
    case NeuronKind::kLowRank: return "O(2kn + n)";
    case NeuronKind::kQuad1: return "O(3n)";
    case NeuronKind::kQuad2: return "O(3n)";
    case NeuronKind::kKervolution: return "O(n)";
    case NeuronKind::kProposed: return "O(n + k/(k+1)) per output";
    case NeuronKind::kProposedSumOnly: return "O((k+1)n + k)";
  }
  return "?";
}

std::string macs_formula(const NeuronSpec& spec) {
  switch (spec.kind) {
    case NeuronKind::kLinear: return "O(n)";
    case NeuronKind::kGeneral: return "O(n^2 + 2n)";
    case NeuronKind::kPure: return "O(n^2 + n)";
    case NeuronKind::kBuKarpatne: return "O(2n)";
    case NeuronKind::kLowRank: return "O(2kn + k)";
    case NeuronKind::kQuad1: return "O(4n)";
    case NeuronKind::kQuad2: return "O(3n)";
    case NeuronKind::kKervolution: return "O(n)";
    case NeuronKind::kProposed: return "O(n + 2k/(k+1)) per output";
    case NeuronKind::kProposedSumOnly: return "O((k+1)n + 2k)";
  }
  return "?";
}

}  // namespace qdnn::quadratic
