#include "linalg/lowrank.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"

namespace qdnn::linalg {
namespace {

Tensor random_symmetric(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  Tensor m{Shape{n, n}};
  rng.fill_normal(m, 0.0f, 1.0f);
  return symmetrize(m);
}

TEST(LowRank, FullRankIsLossless) {
  const index_t n = 8;
  const Tensor m = random_symmetric(n, 1);
  const LowRankFactors f = truncate_top_k(m, n);
  EXPECT_LT(truncation_error(m, f), 1e-3);
}

TEST(LowRank, RankBoundsValidated) {
  const Tensor m = random_symmetric(4, 2);
  EXPECT_THROW(truncate_top_k(m, 0), std::runtime_error);
  EXPECT_THROW(truncate_top_k(m, 5), std::runtime_error);
}

// Eckart–Young–Mirsky: the truncation error equals the ℓ₂ norm of the
// discarded eigenvalues (the optimal rank-k error in Frobenius norm).
class EckartYoung : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(EckartYoung, ErrorEqualsTailSpectrum) {
  const auto [n, k] = GetParam();
  const Tensor m = random_symmetric(n, 100 + n * 31 + k);
  const EigResult eig = eigh(m);
  double tail = 0.0;
  for (index_t i = k; i < n; ++i)
    tail += static_cast<double>(eig.eigenvalues[i]) * eig.eigenvalues[i];
  const LowRankFactors f = truncate_top_k(m, k);
  EXPECT_NEAR(truncation_error(m, f), std::sqrt(tail),
              1e-3 * (1.0 + std::sqrt(tail)))
      << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EckartYoung,
    ::testing::Values(std::pair{4, 1}, std::pair{4, 2}, std::pair{8, 3},
                      std::pair{12, 6}, std::pair{16, 9}, std::pair{20, 5},
                      std::pair{27, 9}));

TEST(LowRank, ErrorDecreasesWithRank) {
  const index_t n = 12;
  const Tensor m = random_symmetric(n, 7);
  double prev = 1e18;
  for (index_t k = 1; k <= n; ++k) {
    const double err = truncation_error(m, truncate_top_k(m, k));
    EXPECT_LE(err, prev + 1e-4) << "k=" << k;
    prev = err;
  }
}

TEST(LowRank, BeatsRandomFactorsOfSameRank) {
  const index_t n = 16, k = 4;
  const Tensor m = random_symmetric(n, 8);
  const double spectral = truncation_error(m, truncate_top_k(m, k));
  // Random factors with the same parameter budget are (almost surely)
  // worse — this is the optimality half of Eckart–Young, demonstrated.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const double random =
        truncation_error(m, random_rank_k(n, k, 900 + seed));
    EXPECT_LT(spectral, random) << "seed=" << seed;
  }
}

TEST(LowRank, FactorsHaveAdvertisedShapes) {
  const Tensor m = random_symmetric(10, 9);
  const LowRankFactors f = truncate_top_k(m, 3);
  EXPECT_EQ(f.q.shape(), Shape({10, 3}));
  EXPECT_EQ(f.lambda.shape(), Shape({3}));
}

TEST(LowRank, TopKEigenvaluesDescendInMagnitude) {
  const Tensor m = random_symmetric(10, 10);
  const LowRankFactors f = truncate_top_k(m, 5);
  for (index_t i = 0; i + 1 < 5; ++i)
    EXPECT_GE(std::fabs(f.lambda[i]) + 1e-6f, std::fabs(f.lambda[i + 1]));
}

TEST(LowRank, RandomRankKValidatesRank) {
  EXPECT_THROW(random_rank_k(4, 0, 1), std::runtime_error);
  EXPECT_THROW(random_rank_k(4, 5, 1), std::runtime_error);
}

}  // namespace
}  // namespace qdnn::linalg
