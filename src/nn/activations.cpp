#include "nn/activations.h"

#include <cmath>

namespace qdnn::nn {

Tensor ReLU::forward(const Tensor& input) {
  Tensor out = input;
  cached_mask_ = Tensor{input.shape()};
  for (index_t i = 0; i < out.numel(); ++i) {
    if (out[i] > 0.0f) {
      cached_mask_[i] = 1.0f;
    } else {
      out[i] = 0.0f;
    }
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_mask_.empty(), name_ << ": backward before forward");
  return hadamard(grad_output, cached_mask_);
}

namespace {
// Shared boilerplate of the element-wise forward_into implementations:
// shape check + inlined scalar kernel over raw pointers.
template <typename F>
void elementwise_into(const ConstTensorView& input, const TensorView& output,
                      const std::string& name, F&& f) {
  QDNN_CHECK(input.shape() == output.shape(),
             name << ": forward_into shape mismatch " << input.shape()
                  << " vs " << output.shape());
  const float* in = input.data();
  float* out = output.data();
  const index_t n = input.numel();
  for (index_t i = 0; i < n; ++i) out[i] = f(in[i]);
}
}  // namespace

void ReLU::forward_into(const ConstTensorView& input, const TensorView& output,
                        Workspace&) {
  elementwise_into(input, output, name_,
                   [](float v) { return v > 0.0f ? v : 0.0f; });
}

namespace {
// tanh-approximation GELU and its derivative.
constexpr float kGeluC = 0.7978845608028654f;  // sqrt(2/pi)
constexpr float kGeluA = 0.044715f;

float gelu_value(float x) {
  const float t = std::tanh(kGeluC * (x + kGeluA * x * x * x));
  return 0.5f * x * (1.0f + t);
}

float gelu_grad(float x) {
  const float u = kGeluC * (x + kGeluA * x * x * x);
  const float t = std::tanh(u);
  const float du = kGeluC * (1.0f + 3.0f * kGeluA * x * x);
  return 0.5f * (1.0f + t) + 0.5f * x * (1.0f - t * t) * du;
}
}  // namespace

Tensor GELU::forward(const Tensor& input) {
  cached_input_ = input;
  Tensor out = input;
  for (index_t i = 0; i < out.numel(); ++i) out[i] = gelu_value(out[i]);
  return out;
}

Tensor GELU::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  Tensor grad = grad_output;
  for (index_t i = 0; i < grad.numel(); ++i)
    grad[i] *= gelu_grad(cached_input_[i]);
  return grad;
}

void GELU::forward_into(const ConstTensorView& input, const TensorView& output,
                        Workspace&) {
  elementwise_into(input, output, name_, gelu_value);
}

Tensor Tanh::forward(const Tensor& input) {
  Tensor out = input;
  for (index_t i = 0; i < out.numel(); ++i) out[i] = std::tanh(out[i]);
  cached_output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_output_.empty(), name_ << ": backward before forward");
  Tensor grad = grad_output;
  for (index_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= 1.0f - y * y;
  }
  return grad;
}

void Tanh::forward_into(const ConstTensorView& input, const TensorView& output,
                        Workspace&) {
  elementwise_into(input, output, name_,
                   [](float v) { return std::tanh(v); });
}

Tensor Sigmoid::forward(const Tensor& input) {
  Tensor out = input;
  for (index_t i = 0; i < out.numel(); ++i)
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_output_.empty(), name_ << ": backward before forward");
  Tensor grad = grad_output;
  for (index_t i = 0; i < grad.numel(); ++i) {
    const float y = cached_output_[i];
    grad[i] *= y * (1.0f - y);
  }
  return grad;
}

void Sigmoid::forward_into(const ConstTensorView& input, const TensorView& output,
                           Workspace&) {
  elementwise_into(input, output, name_,
                   [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

}  // namespace qdnn::nn
