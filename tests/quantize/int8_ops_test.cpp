// Unit tests for the integer reference kernels (quantize/int8_ops).
#include "quantize/int8_ops.h"

#include <gtest/gtest.h>

#include "core/rng.h"

namespace qdnn::quantize {
namespace {

// Plain int64 reference for both GEMM orientations.
void ref_gemm_abt(const std::int8_t* a, const std::int8_t* b,
                  std::int64_t* c, index_t m, index_t n, index_t k) {
  for (index_t i = 0; i < m; ++i)
    for (index_t j = 0; j < n; ++j) {
      std::int64_t acc = 0;
      for (index_t p = 0; p < k; ++p)
        acc += static_cast<std::int64_t>(a[i * k + p]) * b[j * k + p];
      c[i * n + j] = acc;
    }
}

std::vector<std::int8_t> random_codes(index_t n, Rng& rng) {
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v)
    x = static_cast<std::int8_t>(rng.uniform_int(255) - 127);
  return v;
}

TEST(GemmI8, MatchesInt64Reference) {
  Rng rng(1);
  const index_t m = 7, n = 5, k = 13;
  const auto a = random_codes(m * k, rng);
  const auto b = random_codes(n * k, rng);
  std::vector<std::int32_t> c(static_cast<std::size_t>(m * n));
  std::vector<std::int64_t> ref(static_cast<std::size_t>(m * n));
  gemm_i8(a.data(), b.data(), c.data(), m, n, k);
  ref_gemm_abt(a.data(), b.data(), ref.data(), m, n, k);
  for (index_t i = 0; i < m * n; ++i)
    EXPECT_EQ(static_cast<std::int64_t>(c[static_cast<std::size_t>(i)]),
              ref[static_cast<std::size_t>(i)]);
}

TEST(GemmI8, TwoOrientationsAgreeOnTransposedOperand) {
  // gemm_i8(A, B) computes A·Bᵀ; gemm_i8_nn(A, Bᵀ) must give the same.
  Rng rng(2);
  const index_t m = 4, n = 6, k = 9;
  const auto a = random_codes(m * k, rng);
  const auto b = random_codes(n * k, rng);  // [n, k]
  std::vector<std::int8_t> bt(static_cast<std::size_t>(k * n));  // [k, n]
  for (index_t i = 0; i < n; ++i)
    for (index_t p = 0; p < k; ++p)
      bt[static_cast<std::size_t>(p * n + i)] =
          b[static_cast<std::size_t>(i * k + p)];

  std::vector<std::int32_t> c1(static_cast<std::size_t>(m * n));
  std::vector<std::int32_t> c2(static_cast<std::size_t>(m * n));
  gemm_i8(a.data(), b.data(), c1.data(), m, n, k);
  gemm_i8_nn(a.data(), bt.data(), c2.data(), m, n, k);
  EXPECT_EQ(c1, c2);
}

TEST(GemmI8, WorstCaseAccumulationFitsInt32) {
  // 127·127·k must stay below 2^31 for every fan-in this library builds
  // (largest conv patch: 64 channels × 3×3 = 576; transformer d_model
  // 512).  Verify the arithmetic headroom claim at the extreme.
  const index_t k = 4096;  // far above any layer here
  std::vector<std::int8_t> a(static_cast<std::size_t>(k), 127);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k), 127);
  std::vector<std::int32_t> c(1);
  gemm_i8(a.data(), b.data(), c.data(), 1, 1, k);
  EXPECT_EQ(c[0], 127 * 127 * k);
  EXPECT_LT(static_cast<std::int64_t>(c[0]), std::int64_t{1} << 31);
}

TEST(ToCodes, ExactOnGridMultiples) {
  QuantParams p{0.25f, 8};
  const float xs[] = {0.0f, 0.25f, -0.5f, 31.75f, -31.75f};
  std::int8_t codes[5];
  to_codes(xs, 5, p, codes);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 1);
  EXPECT_EQ(codes[2], -2);
  EXPECT_EQ(codes[3], 127);
  EXPECT_EQ(codes[4], -127);
}

TEST(ToCodes, ClampsOutOfRange) {
  QuantParams p{0.1f, 8};
  const float xs[] = {1000.0f, -1000.0f};
  std::int8_t codes[2];
  to_codes(xs, 2, p, codes);
  EXPECT_EQ(codes[0], 127);
  EXPECT_EQ(codes[1], -127);
}

TEST(ToCodes, RoundTripWithDequantIsFakeQuant) {
  Rng rng(3);
  Tensor t{Shape{256}};
  rng.fill_normal(t, 0.0f, 1.0f);
  const QuantParams p = choose_params_absmax(t.data(), t.numel(), 8);
  std::vector<std::int8_t> codes(256);
  to_codes(t.data(), 256, p, codes.data());
  const Tensor fq = fake_quantize(t, 8);
  for (index_t i = 0; i < 256; ++i)
    EXPECT_FLOAT_EQ(static_cast<float>(codes[static_cast<std::size_t>(i)]) *
                        p.scale,
                    fq[i]);
}

}  // namespace
}  // namespace qdnn::quantize
