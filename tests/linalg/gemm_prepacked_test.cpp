// PackedWeights / gemm_prepacked contract tests: the freeze-time pack
// must be bit-identical to gemm()'s per-call packing path across
// transpose flags, ragged tail sizes (M, N, K not multiples of the
// blocked kernel's tiles), and reuse of one PackedWeights across many
// calls — the property Module::freeze rests on.
#include "linalg/packed_weights.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.h"
#include "linalg/gemm.h"

namespace qdnn::linalg {
namespace {

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  Tensor t{std::move(shape)};
  rng.fill_uniform(t, -1.0f, 1.0f);
  return t;
}

// Reference result via the allocating gemm(), prepacked result via
// PackedWeights, compared bit-for-bit.
void expect_prepacked_matches(bool trans_a, bool trans_b, index_t m,
                              index_t n, index_t k, float alpha, float beta,
                              std::uint64_t seed) {
  const Tensor a = trans_a ? random_tensor(Shape{k, m}, seed)
                           : random_tensor(Shape{m, k}, seed);
  const Tensor b = trans_b ? random_tensor(Shape{n, k}, seed + 1)
                           : random_tensor(Shape{k, n}, seed + 1);
  const index_t lda = trans_a ? m : k;
  const index_t ldb = trans_b ? k : n;

  Tensor c_ref = random_tensor(Shape{m, n}, seed + 2);
  Tensor c_pre = c_ref;  // same starting C so beta scaling matches

  gemm(trans_a, trans_b, m, n, k, alpha, a.data(), lda, b.data(), ldb,
       beta, c_ref.data(), n);

  PackedWeights packed;
  packed.pack(trans_b, k, n, b.data(), ldb);
  EXPECT_TRUE(packed.packed());
  EXPECT_EQ(packed.rows(), k);
  EXPECT_EQ(packed.cols(), n);

  std::vector<float> scratch(static_cast<std::size_t>(
      gemm_scratch_floats(trans_a, false, m, n, k)));
  gemm_prepacked(trans_a, m, n, k, alpha, a.data(), lda, packed, beta,
                 c_pre.data(), n, scratch.data());

  ASSERT_EQ(c_ref.shape(), c_pre.shape());
  EXPECT_EQ(max_abs_diff(c_ref, c_pre), 0.0f)
      << "trans_a=" << trans_a << " trans_b=" << trans_b << " m=" << m
      << " n=" << n << " k=" << k;
}

TEST(GemmPrepacked, BitIdenticalAcrossTransposeFlags) {
  for (bool trans_a : {false, true})
    for (bool trans_b : {false, true})
      expect_prepacked_matches(trans_a, trans_b, 7, 9, 11, 1.0f, 0.0f,
                               17 + (trans_a ? 2 : 0) + (trans_b ? 1 : 0));
}

TEST(GemmPrepacked, BitIdenticalOnRaggedTailSizes) {
  // The gemm kernel blocks I by 64 and K by 256; exercise sizes straddling
  // both tile edges plus deliberately awkward primes.
  const index_t sizes[] = {1, 3, 63, 64, 65};
  for (index_t m : sizes)
    for (index_t n : {static_cast<index_t>(1), static_cast<index_t>(5),
                      static_cast<index_t>(65)})
      expect_prepacked_matches(false, true, m, n, 257, 1.0f, 0.0f,
                               100 + m * 7 + n);
}

TEST(GemmPrepacked, HonorsAlphaAndBeta) {
  expect_prepacked_matches(false, true, 6, 10, 13, 0.5f, 1.0f, 31);
  expect_prepacked_matches(false, true, 6, 10, 13, -2.0f, 0.25f, 37);
  expect_prepacked_matches(true, false, 6, 10, 13, 1.5f, 1.0f, 41);
  // alpha = 0 leaves only the beta scaling.
  expect_prepacked_matches(false, true, 6, 10, 13, 0.0f, 0.5f, 43);
}

TEST(GemmPrepacked, OnePackReusedAcrossManyCallsAndShapes) {
  // A frozen layer reuses one PackedWeights for every request; the pack
  // must be read-only in gemm_prepacked, so repeated calls with varying M
  // (batch) are all bit-identical to fresh gemm calls.
  const index_t n = 12, k = 9;
  const Tensor w = random_tensor(Shape{n, k}, 5);  // [out, in], trans_b
  PackedWeights packed;
  packed.pack(/*trans=*/true, k, n, w.data(), k);
  const std::vector<float> pack_snapshot(
      packed.data(), packed.data() + packed.size_floats());

  for (index_t m : {1, 4, 7, 4, 1}) {
    const Tensor a = random_tensor(Shape{m, k}, 50 + m);
    Tensor c_ref{Shape{m, n}};
    Tensor c_pre{Shape{m, n}};
    gemm(false, true, m, n, k, 1.0f, a.data(), k, w.data(), k, 0.0f,
         c_ref.data(), n);
    gemm_prepacked(false, m, n, k, 1.0f, a.data(), k, packed, 0.0f,
                   c_pre.data(), n);
    EXPECT_EQ(max_abs_diff(c_ref, c_pre), 0.0f) << "m=" << m;
  }
  // The pack itself never mutated.
  for (index_t i = 0; i < packed.size_floats(); ++i)
    ASSERT_EQ(packed.data()[i],
              pack_snapshot[static_cast<std::size_t>(i)]);
}

TEST(GemmPrepacked, RepackReplacesAndClearReleases) {
  const Tensor w1 = random_tensor(Shape{4, 6}, 7);
  const Tensor w2 = random_tensor(Shape{4, 6}, 8);
  PackedWeights packed;
  packed.pack(true, 6, 4, w1.data(), 6);
  const float first = packed.data()[0];
  // Re-pack (the freeze-after-weight-update path) replaces the block.
  packed.pack(true, 6, 4, w2.data(), 6);
  EXPECT_TRUE(packed.packed());
  EXPECT_NE(packed.data()[0], first);  // different random weights

  packed.clear();
  EXPECT_FALSE(packed.packed());
  EXPECT_EQ(packed.rows(), 0);
  EXPECT_EQ(packed.cols(), 0);

  // Using a cleared pack is a checked error.
  Tensor a{Shape{2, 6}};
  Tensor c{Shape{2, 4}};
  EXPECT_THROW(gemm_prepacked(false, 2, 4, 6, 1.0f, a.data(), 6, packed,
                              0.0f, c.data(), 4),
               std::runtime_error);
}

TEST(GemmPrepacked, RejectsShapeMismatch) {
  const Tensor w = random_tensor(Shape{4, 6}, 9);
  PackedWeights packed;
  packed.pack(true, 6, 4, w.data(), 6);
  Tensor a{Shape{2, 6}};
  Tensor c{Shape{2, 4}};
  // k mismatch.
  EXPECT_THROW(gemm_prepacked(false, 2, 4, 5, 1.0f, a.data(), 5, packed,
                              0.0f, c.data(), 4),
               std::runtime_error);
  // n mismatch.
  EXPECT_THROW(gemm_prepacked(false, 2, 5, 6, 1.0f, a.data(), 6, packed,
                              0.0f, c.data(), 5),
               std::runtime_error);
}

}  // namespace
}  // namespace qdnn::linalg
