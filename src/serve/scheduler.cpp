#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>

namespace qdnn::serve {

namespace {

double ring_percentile(const std::vector<double>& ring, double q) {
  if (ring.empty()) return 0.0;
  std::vector<double> sorted(ring);
  std::sort(sorted.begin(), sorted.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[idx];
}

}  // namespace

BatchScheduler::BatchScheduler(models::Transformer& model,
                               BatchSchedulerConfig config)
    : config_(config),
      vocab_(model.config().tgt_vocab),
      session_(model, config.session),
      trace_(config.trace_events) {
  QDNN_CHECK(config_.bos >= 0 && config_.bos < vocab_,
             "BatchScheduler: bos " << config_.bos << " outside vocab "
                                    << vocab_);
  QDNN_CHECK(config_.eos >= 0 && config_.eos < vocab_,
             "BatchScheduler: eos " << config_.eos << " outside vocab "
                                    << vocab_);
  QDNN_CHECK(config_.prefill_workers >= 0,
             "BatchScheduler: prefill_workers must be non-negative, got "
                 << config_.prefill_workers);
  QDNN_CHECK(config_.prefill_slots >= 0,
             "BatchScheduler: prefill_slots must be non-negative (0 = "
             "max_batch), got "
                 << config_.prefill_slots);
  QDNN_CHECK(config_.max_queue >= 0,
             "BatchScheduler: max_queue must be non-negative (0 = "
             "unbounded), got "
                 << config_.max_queue);
  QDNN_CHECK(config_.age_ticks >= 0,
             "BatchScheduler: age_ticks must be non-negative (0 = no "
             "aging), got "
                 << config_.age_ticks);
  QDNN_CHECK(config_.stats_window >= 0,
             "BatchScheduler: stats_window must be non-negative (0 = "
             "counts only), got "
                 << config_.stats_window);

  const index_t rows = session_.max_batch();
  slots_.resize(static_cast<std::size_t>(rows));
  feed_.assign(static_cast<std::size_t>(rows), config_.bos);
  // Stack of free rows, highest first, so back() hands out row 0 first.
  // Rows start parked at ring position 0 (the session parks every row at
  // bind), so free rows need no per-tick maintenance.
  free_rows_.reserve(static_cast<std::size_t>(rows));
  for (index_t r = rows - 1; r >= 0; --r) free_rows_.push_back(r);
  completed_.reserve(static_cast<std::size_t>(rows));
  prob_scratch_ = Tensor{Shape{vocab_}};
  idx_scratch_.resize(static_cast<std::size_t>(vocab_));
  for (index_t c = 0; c < kPriorityClasses; ++c) {
    const auto window = static_cast<std::size_t>(config_.stats_window);
    SampleRing& qw = queue_wait_ring_[static_cast<std::size_t>(c)];
    SampleRing& tt = ttft_ring_[static_cast<std::size_t>(c)];
    qw.window = window;
    qw.buf.reserve(window);
    tt.window = window;
    tt.buf.reserve(window);
  }
  latency_ring_.window = static_cast<std::size_t>(config_.stats_window);
  latency_ring_.buf.reserve(latency_ring_.window);
  tick_ring_.window = static_cast<std::size_t>(config_.stats_window);
  tick_ring_.buf.reserve(tick_ring_.window);
  register_metrics();

  if (config_.prefill_workers > 0) {
    const index_t slots = config_.prefill_slots > 0
                              ? config_.prefill_slots
                              : rows;
    prefill_ = std::make_unique<PrefillPool>(
        session_, config_.prefill_workers, slots, &trace_);
  }
}

void BatchScheduler::register_metrics() {
  // Every instrument the tick path records into is created HERE, at
  // bind: the hot paths only ever dereference these preallocated handles
  // (relaxed atomic ops), never the registry's name map — which is what
  // keeps steady-state ticks zero-heap-alloc with tracing on or off.
  registry_ = config_.registry;
  if (registry_ == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry_ = owned_registry_.get();
  }
  const std::string p = config_.metrics_prefix + ".";
  ticks_counter_ = &registry_->counter(p + "ticks");
  stepped_ticks_counter_ = &registry_->counter(p + "stepped_ticks");
  tokens_counter_ = &registry_->counter(p + "tokens");
  occupancy_sum_counter_ = &registry_->counter(p + "occupancy_sum");
  live_rows_gauge_ = &registry_->gauge(p + "live_rows");
  queue_depth_gauge_ = &registry_->gauge(p + "queue_depth");
  // Tick-denominated latency buckets (queue wait / TTFT / end-to-end):
  // powers of two up to half a K of batch steps; µs buckets for the
  // stepped-tick wall time.  Fixed at registration per the histogram
  // contract; SchedulerStats' exact percentiles come from the rings.
  const std::vector<long long> tick_bounds{1,  2,  4,   8,   16,
                                           32, 64, 128, 256, 512};
  const std::vector<long long> us_bounds{50,   100,  200,   500,   1000,
                                         2000, 5000, 10000, 20000, 50000};
  queue_wait_hist_ = &registry_->histogram(p + "queue_wait_ticks",
                                           tick_bounds);
  ttft_hist_ = &registry_->histogram(p + "ttft_ticks", tick_bounds);
  latency_hist_ = &registry_->histogram(p + "latency_ticks", tick_bounds);
  tick_us_hist_ = &registry_->histogram(p + "tick_us", us_bounds);
  // Paged KV / prefix cache (PR 10): page-pool gauges (set per tick) and
  // the preemption counter.
  preempted_counter_ = &registry_->counter(p + "preemptions");
  free_pages_gauge_ = &registry_->gauge(p + "kv.free_pages");
  used_pages_gauge_ = &registry_->gauge(p + "kv.used_pages");
  prefix_entries_gauge_ = &registry_->gauge(p + "kv.prefix_entries");
  static const char* kClassNames[kPriorityClasses] = {"high", "normal",
                                                      "low"};
  for (std::size_t c = 0; c < static_cast<std::size_t>(kPriorityClasses);
       ++c) {
    const std::string cp = p + kClassNames[c] + ".";
    ClassCounters& cc = class_counters_[c];
    cc.submitted = &registry_->counter(cp + "submitted");
    cc.completed = &registry_->counter(cp + "completed");
    cc.cancelled = &registry_->counter(cp + "cancelled");
    cc.expired = &registry_->counter(cp + "expired");
    cc.shed = &registry_->counter(cp + "shed");
    cc.errored = &registry_->counter(cp + "errored");
    // Wall-clock phase histograms (RequestResult::phases, µs), observed
    // at retirement for trace-sampled requests only.
    cc.queue_us = &registry_->histogram(cp + "queue_us", us_bounds);
    cc.prefill_us = &registry_->histogram(cp + "prefill_us", us_bounds);
    cc.first_token_us =
        &registry_->histogram(cp + "first_token_us", us_bounds);
    cc.decode_us = &registry_->histogram(cp + "decode_us", us_bounds);
  }
}

index_t BatchScheduler::submit(Request request) {
  QDNN_CHECK(request.src_ids.rank() == 1 ||
                 (request.src_ids.rank() == 2 &&
                  request.src_ids.dim(0) == 1),
             "BatchScheduler: src_ids must be [Ts] or [1, Ts], got "
                 << request.src_ids.shape());
  const index_t ts = request.src_ids.dim(request.src_ids.rank() - 1);
  QDNN_CHECK(ts >= 1 && ts <= session_.max_src(),
             "BatchScheduler: source length " << ts << " outside [1, "
                                              << session_.max_src()
                                              << "] (max_src)");
  QDNN_CHECK(request.src_length >= 0 && request.src_length <= ts,
             "BatchScheduler: src_length " << request.src_length
                                           << " outside [0, " << ts
                                           << "] (0 = all valid)");
  QDNN_CHECK(request.max_new_tokens >= 0 &&
                 request.max_new_tokens <= session_.max_steps(),
             "BatchScheduler: max_new_tokens "
                 << request.max_new_tokens << " outside [0, "
                 << session_.max_steps() << "] (max_steps)");
  validate(request.sampling, vocab_);
  const auto cls = static_cast<index_t>(request.priority);
  QDNN_CHECK(cls >= 0 && cls < kPriorityClasses,
             "BatchScheduler: priority class " << cls << " outside [0, "
                                               << kPriorityClasses << ")");
  QDNN_CHECK(request.deadline_tick >= 0,
             "BatchScheduler: deadline_tick must be non-negative (0 = "
             "none), got "
                 << request.deadline_tick);
  QDNN_CHECK(request.id >= -1,
             "BatchScheduler: id must be >= 0 (or -1 = assign), got "
                 << request.id);
  if (request.id >= 0) {
    // Explicit-id uniqueness: a duplicate of an UNRESOLVED id would
    // silently produce two results with the same id — reject it at the
    // edge like every other malformed field.  Resolved ids may be
    // reused.
    QDNN_CHECK(inflight_ids_.count(request.id) == 0,
               "BatchScheduler: id " << request.id
                                     << " is already in flight (ids must "
                                        "be unique among unresolved "
                                        "requests)");
  } else {
    while (inflight_ids_.count(next_id_) != 0) ++next_id_;
    request.id = next_id_++;
  }
  const index_t id = request.id;
  class_counters_[static_cast<std::size_t>(cls)].submitted->inc();
  // Trace sampling: decided HERE, once per submit — every Nth request
  // while tracing is enabled (obs::trace_sample()).  The decision rides
  // the job and then the slot, so a sampled request's timeline and phase
  // timestamps are complete end to end and every other request keeps the
  // no-op fast path at every per-request record site.
  const bool sampled =
      obs::trace_enabled() && (trace_seq_++ % obs::trace_sample() == 0);

  if (config_.max_queue > 0 && queued() >= config_.max_queue) {
    // Backpressure: the bounded queue is full, so this submit load-sheds
    // instead of growing it — the id still resolves, with exactly one
    // kShed result, and the caller can retry or route elsewhere.
    RequestResult shed;
    shed.id = id;
    shed.reason = FinishReason::kShed;
    shed.error = "admission queue full (max_queue)";
    shed.priority = request.priority;
    shed.submit_tick = ticks_;
    shed.finish_tick = ticks_;  // admit_tick stays -1: never admitted
    completed_.push_back(std::move(shed));
    class_counters_[static_cast<std::size_t>(cls)].shed->inc();
    if (sampled) trace_.record_always(id, obs::TraceEvent::kShed, cls);
    return id;
  }

  PrefillJob job;
  job.id = id;
  job.submit_tick = ticks_;
  job.sampled = sampled;
  if (sampled) {
    job.submit_ns = obs::now_ns();
    trace_.record_always(id, obs::TraceEvent::kSubmit, cls);
  }
  // The request's warm token buffer travels with it: reserved here (the
  // submit edge allocates by contract), swapped into the batch slot at
  // admission and handed off inside the RequestResult at retirement — so
  // the admit and retire ticks themselves never heap-allocate.
  job.budget = request.max_new_tokens > 0 ? request.max_new_tokens
                                          : session_.max_steps();
  job.tokens.reserve(static_cast<std::size_t>(job.budget));
  job.request = std::move(request);
  inflight_ids_.insert(id);
  queue_.push_back(std::move(job));
  if (prefill_) pump_pool();
  queue_depth_gauge_->set(static_cast<double>(queued()));
  return id;
}

index_t BatchScheduler::effective_class(const PrefillJob& job) const {
  index_t cls = static_cast<index_t>(job.request.priority);
  if (config_.age_ticks > 0)
    cls -= (ticks_ - job.submit_tick) / config_.age_ticks;
  return std::max<index_t>(cls, 0);
}

std::deque<PrefillJob>::iterator BatchScheduler::pick_queued() {
  // Best effective class wins; the queue is in submit order, so keeping
  // the FIRST hit of the best class gives FIFO within a class (and an
  // aged request beats any same-class request submitted after it).
  auto best = queue_.begin();
  index_t best_cls = effective_class(*best);
  for (auto it = std::next(best); it != queue_.end(); ++it) {
    const index_t cls = effective_class(*it);
    if (cls < best_cls) {
      best = it;
      best_cls = cls;
    }
  }
  return best;
}

void BatchScheduler::resolve_unadmitted(PrefillJob&& job,
                                        FinishReason reason) {
  // A request resolved before ever holding a batch row: cancelled or
  // past its deadline while queued / in the prefill pipeline.  Exactly
  // one result, empty tokens, no batch capacity touched.
  const auto cls = static_cast<std::size_t>(job.request.priority);
  RequestResult result;
  result.id = job.id;
  result.tokens = std::move(job.tokens);  // empty
  result.reason = reason;
  result.priority = job.request.priority;
  result.submit_tick = job.submit_tick;
  result.finish_tick = ticks_;  // admit_tick stays -1: never admitted
  if (job.submit_ns > 0)
    result.phases.total_ns = obs::now_ns() - job.submit_ns;
  completed_.push_back(std::move(result));
  inflight_ids_.erase(job.id);
  if (reason == FinishReason::kCancelled) {
    class_counters_[cls].cancelled->inc();
    if (job.sampled)
      trace_.record_always(job.id, obs::TraceEvent::kCancel);
  } else {
    class_counters_[cls].expired->inc();
    if (job.sampled)
      trace_.record_always(job.id, obs::TraceEvent::kRetire);
  }
}

bool BatchScheduler::cancel(index_t id) {
  if (inflight_ids_.count(id) == 0) return false;
  if (pool_cancelled_.count(id) != 0) return false;  // double-cancel
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id != id) continue;
    PrefillJob job = std::move(*it);
    queue_.erase(it);
    resolve_unadmitted(std::move(job), FinishReason::kCancelled);
    return true;
  }
  for (index_t row = 0; row < static_cast<index_t>(slots_.size());
       ++row) {
    Slot& slot = slots_[static_cast<std::size_t>(row)];
    if (!slot.live || slot.id != id) continue;
    // Mid-flight: retire right here with the tokens decoded so far; the
    // freed row admits the next request on the following tick.
    retire(row, FinishReason::kCancelled);
    return true;
  }
  // In flight but neither queued nor live: its prefill is inside the
  // pool (computing or finished).  The compute cannot be interrupted —
  // flag the id and the next tick's drain resolves it without ever
  // committing a row.
  if (!prefill_) return false;  // unreachable: sync in-flight = queue∪rows
  pool_cancelled_.insert(id);
  return true;
}

void BatchScheduler::expire_deadlines() {
  // Queued requests past their deadline shed before admission could
  // waste a prefill on them...
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->request.deadline_tick > 0 &&
        ticks_ >= it->request.deadline_tick) {
      PrefillJob job = std::move(*it);
      it = queue_.erase(it);
      resolve_unadmitted(std::move(job), FinishReason::kDeadline);
    } else {
      ++it;
    }
  }
  // ...and live rows past it retire mid-flight, freeing the KV slot this
  // very tick.
  for (index_t row = 0; row < static_cast<index_t>(slots_.size());
       ++row) {
    Slot& slot = slots_[static_cast<std::size_t>(row)];
    if (slot.live && slot.deadline_tick > 0 &&
        ticks_ >= slot.deadline_tick)
      retire(row, FinishReason::kDeadline);
  }
}

void BatchScheduler::pump_pool() {
  // Feed the pool in priority order, keeping at most `slots` jobs inside
  // it: the pool computes in feed order, so a later high-priority submit
  // can still overtake everything waiting here in the scheduler queue.
  while (!queue_.empty() && prefill_->pending() < prefill_->slots()) {
    auto it = pick_queued();
    if (it->sampled)
      trace_.record_always(it->id, obs::TraceEvent::kQueueAdmit,
                           effective_class(*it));
    PrefillJob job = std::move(*it);
    queue_.erase(it);
    prefill_->submit(std::move(job));
  }
}

void BatchScheduler::install(index_t row, PrefillJob&& job) {
  Slot& slot = slots_[static_cast<std::size_t>(row)];
  slot.live = true;
  slot.id = job.id;
  slot.budget = job.budget;  // resolved at submit, matches the reserve
  slot.sampling = job.request.sampling;
  slot.tokens = std::move(job.tokens);  // warm; the replay window on resume
  slot.submit_tick = job.submit_tick;
  slot.priority = job.request.priority;
  slot.deadline_tick = job.request.deadline_tick;
  slot.on_token = std::move(job.request.on_token);
  // The request itself stays with the slot so a preemption can requeue
  // the job wholesale (preempt()).
  slot.request = std::move(job.request);
  slot.sampled = job.sampled;
  slot.submit_ns = job.submit_ns;
  if (job.resume) {
    // Re-admission after preemption: restore the decode exactly where it
    // stopped — the Rng mid-stream, the decoded tokens armed for replay
    // by the step loop, and the ORIGINAL admission / first-token stamps,
    // so the result differs from an unpreempted run only in finish_tick.
    // Queue-wait samples are NOT re-recorded.
    slot.rng = job.resume_rng;
    slot.replay_pos = 0;
    slot.replay_len = static_cast<index_t>(slot.tokens.size());
    slot.admit_tick = job.resume_admit_tick;
    slot.first_token_tick = job.resume_first_token_tick;
    slot.admit_ns = job.resume_admit_ns;
    slot.first_token_ns = job.resume_first_token_ns;
    slot.prefill_ns = job.resume_prefill_ns;
  } else {
    slot.rng.reseed(slot.sampling.seed);
    slot.replay_pos = 0;
    slot.replay_len = 0;
    slot.admit_tick = ticks_;
    slot.first_token_tick = -1;
    slot.admit_ns = slot.sampled ? obs::now_ns() : 0;
    slot.prefill_ns = (job.prefill_start_ns > 0 && job.prefill_end_ns > 0)
                          ? job.prefill_end_ns - job.prefill_start_ns
                          : 0;
    slot.first_token_ns = 0;
    queue_wait_ring_[static_cast<std::size_t>(
                         static_cast<index_t>(slot.priority))]
        .record(static_cast<double>(ticks_ - slot.submit_tick));
    queue_wait_hist_->observe(ticks_ - slot.submit_tick);
  }
  if (slot.sampled)
    trace_.record_always(slot.id, obs::TraceEvent::kCommit, row);
  feed_[static_cast<std::size_t>(row)] = config_.bos;
  ++live_rows_;
  live_rows_gauge_->set(static_cast<double>(live_rows_));
}

void BatchScheduler::admit_sync() {
  // Synchronous admission runs the prefill on the serving thread:
  // prime_row = prime_compute + commit_row, the same code path the async
  // pool splits across threads.  The queue is drained best-class-first.
  //
  // PR 10: each admission first probes the session's prefix cache — a hit
  // maps the already-committed shared cross-K/V pages into the row
  // (bit-identical to a cold prime, zero compute, zero fresh pages) and a
  // miss gates on the page pool actually covering the commit: the cross
  // pages plus the first self page, counting what evicting cached
  // prefixes could reclaim.  An admission that does not fit leaves the
  // pick queued (head-of-line by design — it IS the best effective
  // class); a drained batch always fits, because the session validates
  // pool_pages covers one worst-case row.
  while (!queue_.empty() && !free_rows_.empty()) {
    const index_t row = free_rows_.back();
    auto it = pick_queued();
    if (session_.try_commit_row_from_cache(row, it->request.src_ids,
                                           it->request.src_length)) {
      if (it->sampled) {
        trace_.record_always(it->id, obs::TraceEvent::kQueueAdmit,
                             effective_class(*it));
        trace_.record_always(it->id, obs::TraceEvent::kPrefixHit, row);
      }
      PrefillJob job = std::move(*it);
      queue_.erase(it);
      free_rows_.pop_back();
      install(row, std::move(job));
      continue;
    }
    const index_t ts =
        it->request.src_ids.dim(it->request.src_ids.rank() - 1);
    if (session_.free_pages() + session_.reclaimable_pages() <
        session_.cross_pages_for(ts) + 1)
      break;
    if (it->sampled)
      trace_.record_always(it->id, obs::TraceEvent::kQueueAdmit,
                           effective_class(*it));
    PrefillJob job = std::move(*it);
    queue_.erase(it);
    const bool tracing = job.sampled;
    if (tracing) {
      job.prefill_start_ns = obs::now_ns();
      trace_.record_always(job.id, obs::TraceEvent::kPrefillStart);
    }
    std::exception_ptr error;
    try {
      session_.prime_row(row, job.request.src_ids, job.request.src_length);
    } catch (...) {
      // A prefill failure that slipped past submit (e.g. a source id
      // outside the encoder vocabulary) resolves exactly like the async
      // path: a kError result, never a dropped id.  prime_row throws
      // before any session mutation, and the row was only peeked — not
      // popped — so no batch capacity leaks either.
      error = std::current_exception();
    }
    if (tracing) {
      job.prefill_end_ns = obs::now_ns();
      trace_.record_always(job.id, obs::TraceEvent::kPrefillEnd);
    }
    if (error) {
      resolve_failed(std::move(job), error);
      continue;
    }
    free_rows_.pop_back();
    install(row, std::move(job));
  }
}

void BatchScheduler::resolve_failed(PrefillJob&& job,
                                    std::exception_ptr error) {
  // A prefill failure must still resolve the submitted id: emit a kError
  // result instead of dropping the request on the floor.  No batch row
  // is consumed.  Allocates (the message) — error path.
  const auto cls = static_cast<std::size_t>(job.request.priority);
  RequestResult failed;
  failed.id = job.id;
  failed.tokens = std::move(job.tokens);  // empty
  failed.reason = FinishReason::kError;
  failed.priority = job.request.priority;
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    failed.error = e.what();
  } catch (...) {
    failed.error = "unknown prefill error";
  }
  failed.submit_tick = job.submit_tick;
  failed.finish_tick = ticks_;  // admit_tick stays -1: never admitted
  if (job.submit_ns > 0)
    failed.phases.total_ns = obs::now_ns() - job.submit_ns;
  const index_t failed_id = failed.id;
  completed_.push_back(std::move(failed));
  inflight_ids_.erase(failed_id);
  class_counters_[cls].errored->inc();
  trace_.record(failed_id, obs::TraceEvent::kRetire);
}

void BatchScheduler::admit_async() {
  pump_pool();
  PrefillPool::Finished fin;
  // Doomed prefills — errored, cancelled mid-compute, or past deadline —
  // resolve unconditionally: they need no batch row, so they must not
  // queue behind the free-row gate below (a fully live batch would
  // otherwise hold the result AND its staging slot hostage for up to
  // max_steps ticks).
  const auto doomed = [this](const PrefillPool::Finished& f) {
    return static_cast<bool>(f.error) ||
           pool_cancelled_.count(f.job.id) != 0 ||
           (f.job.request.deadline_tick > 0 &&
            ticks_ >= f.job.request.deadline_tick);
  };
  const auto resolve_doomed = [this](PrefillPool::Finished&& f) {
    // A cache-hit staging owns refcounts on shared prefix pages; hand
    // them back before the slot is reused (no-op for cold prefills).
    session_.release_staged_prefix(prefill_->staging_mut(f.slot));
    prefill_->release(f.slot);  // a doomed job must never hold a slot
    if (pool_cancelled_.erase(f.job.id) > 0)
      resolve_unadmitted(std::move(f.job), FinishReason::kCancelled);
    else if (f.error)
      resolve_failed(std::move(f.job), f.error);
    else
      resolve_unadmitted(std::move(f.job), FinishReason::kDeadline);
    pump_pool();  // the freed staging slot can start the next prefill
  };
  // The held prefill (page gate, below) can go doomed while waiting —
  // cancellations and deadlines must not leak it.
  if (has_held_ && doomed(held_fin_)) {
    has_held_ = false;
    resolve_doomed(std::move(held_fin_));
  }
  while (prefill_->try_take_if(doomed, fin)) resolve_doomed(std::move(fin));

  // Drain successful prefills into free rows, the held one first (it
  // arrived earliest and still owns its staging slot): each admission is
  // one commit_row K/V copy plus slot bookkeeping — no heap allocation,
  // no waiting (a prefill still computing is simply not ready this
  // tick).  PR 10: each commit is gated on the page pool covering it —
  // the cross pages for a cold prefill (none for a cache hit: those
  // pages are already resident and shared) plus the first self page,
  // counting reclaimable cached prefixes.  A prefill that does not fit
  // is HELD — it counts in queued() and blocks idle(), and commits as
  // soon as retirements or preemptions free pages.
  while (!free_rows_.empty()) {
    if (has_held_) {
      fin = std::move(held_fin_);
      has_held_ = false;
    } else if (!prefill_->try_take(fin)) {
      break;
    }
    if (doomed(fin)) {  // finished after the sweep above — same path
      resolve_doomed(std::move(fin));
      continue;
    }
    const runtime::PrefillStaging& st = prefill_->staging(fin.slot);
    const index_t needed =
        (st.from_cache ? 0 : session_.cross_pages_for(st.ts)) + 1;
    if (session_.free_pages() + session_.reclaimable_pages() < needed) {
      held_fin_ = std::move(fin);
      has_held_ = true;
      break;
    }
    const index_t row = free_rows_.back();
    free_rows_.pop_back();
    if (st.from_cache && fin.job.sampled)
      trace_.record_always(fin.job.id, obs::TraceEvent::kPrefixHit, row);
    session_.commit_row(row, prefill_->staging_mut(fin.slot));
    prefill_->release(fin.slot);
    install(row, std::move(fin.job));
    pump_pool();
  }
}

void BatchScheduler::retire(index_t row, FinishReason reason) {
  Slot& slot = slots_[static_cast<std::size_t>(row)];
  const auto cls = static_cast<std::size_t>(slot.priority);
  RequestResult result;
  result.id = slot.id;
  // Hand the slot's buffer off inside the result; the slot's next warm
  // buffer arrives with the next admitted request (see submit), so no
  // fresh vector is created here and the retire→admit cycle stays
  // allocation-free.
  result.tokens = std::move(slot.tokens);
  result.reason = reason;
  result.priority = slot.priority;
  result.decode_steps = session_.row_steps(row);
  result.submit_tick = slot.submit_tick;
  result.admit_tick = slot.admit_tick;
  result.finish_tick = ticks_;
  result.first_token_tick = slot.first_token_tick;
  if (slot.submit_ns > 0) {
    // Phase durations from the trace timestamps (tracing was on at
    // submit).  One clock read; arithmetic only — no allocation.
    const long long end_ns = obs::now_ns();
    result.phases.total_ns = end_ns - slot.submit_ns;
    result.phases.prefill_ns = slot.prefill_ns;
    if (slot.admit_ns > 0) {
      result.phases.queue_ns = slot.admit_ns - slot.submit_ns;
      result.phases.decode_ns = end_ns - slot.admit_ns;
    }
    if (slot.first_token_ns > 0)
      result.phases.first_token_ns = slot.first_token_ns - slot.submit_ns;
    // Per-class phase histograms (µs): submit_ns > 0 means this request
    // was trace-sampled, so the phases above are populated — fold them
    // into the registry so pollers see the distribution without holding
    // every result.
    const ClassCounters& cc = class_counters_[cls];
    cc.queue_us->observe(result.phases.queue_ns / 1000);
    cc.prefill_us->observe(result.phases.prefill_ns / 1000);
    if (result.phases.first_token_ns > 0)
      cc.first_token_us->observe(result.phases.first_token_ns / 1000);
    cc.decode_us->observe(result.phases.decode_ns / 1000);
  }
  latency_ring_.record(static_cast<double>(ticks_ - slot.submit_tick));
  latency_hist_->observe(ticks_ - slot.submit_tick);
  completed_.push_back(std::move(result));
  inflight_ids_.erase(slot.id);
  switch (reason) {
    case FinishReason::kCancelled:
      class_counters_[cls].cancelled->inc();
      if (slot.sampled)
        trace_.record_always(slot.id, obs::TraceEvent::kCancel, row);
      break;
    case FinishReason::kDeadline:
      class_counters_[cls].expired->inc();
      if (slot.sampled)
        trace_.record_always(slot.id, obs::TraceEvent::kRetire, row);
      break;
    default:
      class_counters_[cls].completed->inc();
      if (slot.sampled)
        trace_.record_always(slot.id, obs::TraceEvent::kRetire, row);
      break;
  }

  slot.live = false;
  slot.id = -1;
  slot.on_token = nullptr;
  // Drop the retired request's source tensor now (deallocation only —
  // the steady-state contract counts allocations, not frees).
  slot.request = Request();
  // Park exactly once: the freed row rides the batch gemm pinned at ring
  // position 0 (output ignored) until its next admission — no per-tick
  // reset needed, and its ring can never exhaust.
  session_.reset_row(row);
  feed_[static_cast<std::size_t>(row)] = config_.bos;
  free_rows_.push_back(row);
  --live_rows_;
  live_rows_gauge_->set(static_cast<double>(live_rows_));
}

index_t BatchScheduler::pick_victim() const {
  // The worst static priority class loses; within it the youngest
  // admission (max admit_tick) loses first — it has the least decode to
  // replay.  Static class, not effective: aging governs admission order,
  // never a live row's claim on its pages.
  index_t victim = -1;
  index_t victim_cls = -1;
  index_t victim_admit = -1;
  for (index_t row = 0; row < static_cast<index_t>(slots_.size());
       ++row) {
    const Slot& slot = slots_[static_cast<std::size_t>(row)];
    if (!slot.live) continue;
    const auto cls = static_cast<index_t>(slot.priority);
    if (cls > victim_cls ||
        (cls == victim_cls && slot.admit_tick > victim_admit)) {
      victim = row;
      victim_cls = cls;
      victim_admit = slot.admit_tick;
    }
  }
  return victim;
}

void BatchScheduler::preempt(index_t row) {
  Slot& slot = slots_[static_cast<std::size_t>(row)];
  // Rebuild the admission job from the slot: the request (callback
  // included), the tokens decoded so far, the Rng mid-stream, and the
  // original stamps — then requeue it at the FRONT, so the victim
  // re-admits before anything submitted after it.  Its id stays in
  // inflight_ids_ (still unresolved, just back in the queue) and its
  // FinishReason is untouched.  Allocates (deque growth) — preemption is
  // a rare pressure event, like submit.
  PrefillJob job;
  job.id = slot.id;
  job.submit_tick = slot.submit_tick;
  job.budget = slot.budget;
  slot.request.on_token = std::move(slot.on_token);
  job.request = std::move(slot.request);
  job.tokens = std::move(slot.tokens);
  job.submit_ns = slot.submit_ns;
  job.sampled = slot.sampled;
  job.resume = true;
  job.resume_rng = slot.rng;
  job.resume_admit_tick = slot.admit_tick;
  job.resume_first_token_tick = slot.first_token_tick;
  job.resume_admit_ns = slot.admit_ns;
  job.resume_first_token_ns = slot.first_token_ns;
  job.resume_prefill_ns = slot.prefill_ns;
  preempted_counter_->inc();
  if (slot.sampled)
    trace_.record_always(slot.id, obs::TraceEvent::kPreempt, row);
  slot.live = false;
  slot.id = -1;
  slot.on_token = nullptr;
  session_.reset_row(row);  // releases every page the row mapped
  feed_[static_cast<std::size_t>(row)] = config_.bos;
  free_rows_.push_back(row);
  --live_rows_;
  live_rows_gauge_->set(static_cast<double>(live_rows_));
  queue_.push_front(std::move(job));
}

index_t BatchScheduler::step() {
  // Deadlines first (a due request must not be admitted or stepped),
  // then admission, so a row freed on the previous tick never idles: a
  // retirement's slot is serving the next queued request one tick later.
  expire_deadlines();
  if (prefill_)
    admit_async();
  else
    admit_sync();

  // Page-pressure preemption (PR 10): before stepping, every live row
  // must hold a self-KV page for its next position.  When the pool is
  // dry even after reclaiming cached prefixes, evict the victim and
  // retry — each preemption frees a live row's pages, and in the worst
  // case the needing row evicts itself, so the loop always terminates.
  for (index_t row = 0; row < static_cast<index_t>(slots_.size());
       ++row) {
    Slot& slot = slots_[static_cast<std::size_t>(row)];
    if (!slot.live) continue;
    while (slot.live && !session_.ensure_row_step_capacity(row)) {
      const index_t victim = pick_victim();
      QDNN_CHECK(victim >= 0,
                 "BatchScheduler: page pool dry with no live row to "
                 "preempt");
      preempt(victim);
    }
  }

  if (live_rows_ == 0) {
    ++ticks_;  // idle tick: time passes for arrival traces
    ticks_counter_->inc();
    queue_depth_gauge_->set(static_cast<double>(queued()));
    free_pages_gauge_->set(static_cast<double>(session_.free_pages()));
    used_pages_gauge_->set(static_cast<double>(session_.total_pages() -
                                               session_.free_pages()));
    prefix_entries_gauge_->set(
        static_cast<double>(session_.prefix_cache().live_entries()));
    return 0;
  }

  const index_t stepped = live_rows_;
  const auto tick_start = std::chrono::steady_clock::now();
  const std::vector<index_t>& greedy = session_.step(feed_);
  const ConstTensorView& logits = session_.logits();
  ++ticks_;
  ticks_counter_->inc();
  stepped_ticks_counter_->inc();
  occupancy_sum_counter_->add(stepped);

  for (index_t row = 0;
       row < static_cast<index_t>(slots_.size()); ++row) {
    Slot& slot = slots_[static_cast<std::size_t>(row)];
    if (!slot.live) continue;
    if (slot.replay_pos < slot.replay_len) {
      // Preemption replay: this position's token was already decoded
      // (and streamed, and counted) before the row was evicted — feed it
      // back verbatim: no sampling, no Rng draw, no stream, no append,
      // no budget check.  The session just rebuilt the same K/V bits, so
      // when the window drains, live decoding resumes exactly where it
      // stopped.
      feed_[static_cast<std::size_t>(row)] =
          slot.tokens[static_cast<std::size_t>(slot.replay_pos++)];
      continue;
    }
    // Greedy rides the session's built-in argmax (identical first-max
    // tie-breaking); stochastic heads sample from the row's logits with
    // the request's own stream.
    const index_t token =
        slot.sampling.kind == SamplingConfig::Kind::kGreedy
            ? greedy[static_cast<std::size_t>(row)]
            : sample_token(slot.sampling, logits.data() + row * vocab_,
                           vocab_, slot.rng, prob_scratch_.data(),
                           idx_scratch_.data());
    if (token == config_.eos) {
      retire(row, FinishReason::kEos);
      continue;
    }
    slot.tokens.push_back(token);
    tokens_counter_->inc();
    feed_[static_cast<std::size_t>(row)] = token;
    if (slot.first_token_tick < 0) {
      slot.first_token_tick = ticks_;
      if (slot.sampled) {
        slot.first_token_ns = obs::now_ns();
        trace_.record_always(slot.id, obs::TraceEvent::kFirstToken, token);
      }
      ttft_ring_[static_cast<std::size_t>(
                     static_cast<index_t>(slot.priority))]
          .record(static_cast<double>(ticks_ - slot.submit_tick));
      ttft_hist_->observe(ticks_ - slot.submit_tick);
    } else if (slot.sampled) {
      // Per-token step mark: arg is the token's 0-based output index.
      trace_.record_always(
          slot.id, obs::TraceEvent::kStep,
          static_cast<index_t>(slot.tokens.size()) - 1);
    }
    if (slot.on_token) {
      // Streamed the moment it exists — not at retirement.  The callback
      // owns its own cost; the contract is "fast and non-blocking".
      StreamEvent event;
      event.id = slot.id;
      event.token = token;
      event.index = static_cast<index_t>(slot.tokens.size()) - 1;
      event.tick = ticks_;
      slot.on_token(event);
    }
    if (static_cast<index_t>(slot.tokens.size()) >= slot.budget)
      retire(row, FinishReason::kLength);
  }
  // Sample the stepped tick's wall time (batch step + sampling +
  // retirement): the per-shard jitter signal ServerStats rolls up.
  const double tick_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - tick_start)
          .count();
  tick_ms_sum_ += tick_ms;
  ++tick_ms_count_;
  tick_ring_.record(tick_ms);
  tick_us_hist_->observe(static_cast<long long>(tick_ms * 1000.0));
  queue_depth_gauge_->set(static_cast<double>(queued()));
  free_pages_gauge_->set(static_cast<double>(session_.free_pages()));
  used_pages_gauge_->set(static_cast<double>(session_.total_pages() -
                                             session_.free_pages()));
  prefix_entries_gauge_->set(
      static_cast<double>(session_.prefix_cache().live_entries()));
  return stepped;
}

bool BatchScheduler::wait_for_prefill() const {
  // A held finished prefill (page gate) commits the moment pages free —
  // never block on UNRELATED prefill compute while it waits.
  if (!prefill_ || has_held_ || live_rows_ > 0 ||
      prefill_->pending() == 0 || prefill_->ready() > 0)
    return false;
  // A queued job the pool has room for would be fed by the next step();
  // a queued job already past its deadline would be resolved by it.
  if (!queue_.empty() && prefill_->pending() < prefill_->slots())
    return false;
  for (const PrefillJob& job : queue_)
    if (job.request.deadline_tick > 0 &&
        ticks_ >= job.request.deadline_tick)
      return false;
  prefill_->wait_ready();
  return true;
}

void BatchScheduler::run() {
  while (!idle()) {
    if (wait_for_prefill()) continue;
    step();
  }
}

std::vector<RequestResult> BatchScheduler::take_results() {
  std::vector<RequestResult> out = std::move(completed_);
  completed_ = std::vector<RequestResult>();
  // Re-reserve off the tick path, so the next retires stay warm (the
  // reserve only covers max_batch retirements per drain; run() without
  // draining grows the buffer, which is allowed — retirement hands
  // results off, the tick contract is on the slot cycle).
  completed_.reserve(slots_.size());
  return out;
}

double BatchScheduler::mean_occupancy() const {
  const long long stepped = stepped_ticks_counter_->value();
  return stepped == 0
             ? 0.0
             : static_cast<double>(occupancy_sum_counter_->value()) /
                   static_cast<double>(stepped);
}

SchedulerStats BatchScheduler::stats() const {
  // A view over the registry counters plus the exact-percentile sample
  // rings — the PR 1–8 surface, now backed by exportable instruments.
  SchedulerStats s;
  s.ticks = ticks_;
  s.stepped_ticks = static_cast<index_t>(stepped_ticks_counter_->value());
  s.total_tokens = static_cast<index_t>(tokens_counter_->value());
  s.mean_occupancy = mean_occupancy();
  s.latency_samples = static_cast<index_t>(latency_ring_.buf.size());
  s.latency_p50 = ring_percentile(latency_ring_.buf, 0.50);
  s.latency_p99 = ring_percentile(latency_ring_.buf, 0.99);
  s.tick_samples = static_cast<index_t>(tick_ring_.buf.size());
  s.tick_mean_ms = tick_ms_count_ == 0
                       ? 0.0
                       : tick_ms_sum_ / static_cast<double>(tick_ms_count_);
  s.tick_p99_ms = ring_percentile(tick_ring_.buf, 0.99);
  for (std::size_t c = 0; c < static_cast<std::size_t>(kPriorityClasses);
       ++c) {
    const ClassCounters& cc = class_counters_[c];
    SchedulerClassStats cls;
    cls.submitted = static_cast<index_t>(cc.submitted->value());
    cls.completed = static_cast<index_t>(cc.completed->value());
    cls.cancelled = static_cast<index_t>(cc.cancelled->value());
    cls.expired = static_cast<index_t>(cc.expired->value());
    cls.shed = static_cast<index_t>(cc.shed->value());
    cls.errored = static_cast<index_t>(cc.errored->value());
    cls.queue_wait_samples =
        static_cast<index_t>(queue_wait_ring_[c].buf.size());
    cls.ttft_samples = static_cast<index_t>(ttft_ring_[c].buf.size());
    cls.queue_wait_p50 = ring_percentile(queue_wait_ring_[c].buf, 0.50);
    cls.queue_wait_p99 = ring_percentile(queue_wait_ring_[c].buf, 0.99);
    cls.ttft_p50 = ring_percentile(ttft_ring_[c].buf, 0.50);
    cls.ttft_p99 = ring_percentile(ttft_ring_[c].buf, 0.99);
    s.per_class[c] = cls;
  }
  const runtime::PrefixCache& pc = session_.prefix_cache();
  s.prefix_hits = pc.hits();
  s.prefix_misses = pc.misses();
  s.prefix_insertions = pc.insertions();
  s.prefix_evictions = pc.evictions();
  s.preemptions = static_cast<index_t>(preempted_counter_->value());
  s.free_pages = session_.free_pages();
  s.total_pages = session_.total_pages();
  return s;
}

}  // namespace qdnn::serve
