// Parameter bookkeeping across a model, keyed by the Parameter::group tag
// — the basis of the Fig. 7 linear-vs-quadratic distribution analysis and
// the parameter columns of Figs. 4/5 and Table II.
#pragma once

#include <map>
#include <string>

#include "nn/module.h"

namespace qdnn::analysis {

struct ParamBreakdown {
  index_t total = 0;
  std::map<std::string, index_t> by_group;  // "linear", "quadratic_q", ...
};

ParamBreakdown count_parameters(nn::Module& model);

// Millions-of-X formatting helpers for bench tables.
std::string format_millions(double value, int decimals = 2);

}  // namespace qdnn::analysis
