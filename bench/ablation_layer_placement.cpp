// Ablation: WHERE to deploy quadratic neurons.
//
// The paper's Fig. 7 analysis concludes that (a) quadratic neurons are
// not equally useful at every depth, but (b) deploying them only in the
// first layer — as [14]/[17] do — is not optimal either.  This bench
// makes that conclusion executable: it trains the same ResNet with the
// proposed neuron deployed in the first n conv layers
// (n ∈ {1, 3, all}) and reports accuracy and parameter cost.
#include <cstdio>

#include "bench_util.h"
#include "models/resnet.h"
#include "train/trainer.h"

using namespace qdnn;
using namespace qdnn::models;
using qdnn::bench::bench_scale;
using qdnn::bench::fmt;
using qdnn::bench::print_header;
using qdnn::bench::print_row;
using qdnn::bench::print_rule;

int main() {
  const int scale = bench_scale();
  print_header("Ablation: quadratic-neuron placement (paper Sec. IV-C.1)");

  data::SyntheticImageConfig data_config;
  data_config.num_classes = 10;
  data_config.image_size = 16;
  data_config.noise_std = 0.7f;
  data_config.shape_amp = 0.25f;
  const auto train_set =
      data::make_synthetic_images(data_config, 500 * scale, 91);
  const auto test_set =
      data::make_synthetic_images(data_config, 250 * scale, 92);

  struct Placement {
    std::string label;
    index_t layer_limit;  // -1 = all conv layers
  };
  const std::vector<Placement> placements = {
      {"linear only", 0},
      {"first layer", 1},
      {"first 3 layers", 3},
      {"all layers", -1},
  };

  CsvWriter csv(qdnn::bench::results_dir() + "/ablation_placement.csv",
                {"placement", "params", "test_accuracy"});
  print_row({"placement", "params/k", "test acc"});
  print_rule();
  for (const Placement& p : placements) {
    ResNetConfig config;
    config.depth = 14;
    config.num_classes = 10;
    config.image_size = 16;
    config.base_width = 8;
    config.spec = NeuronSpec::proposed(9);
    config.quad_layer_limit = p.layer_limit;
    config.seed = 19;
    auto net = make_cifar_resnet(config);

    train::TrainerConfig tc;
    tc.epochs = 8 * scale;
    tc.batch_size = 32;
    tc.lr = 0.05f;
    tc.clip_norm = 5.0f;
    tc.lr_milestones = {index_t(5 * scale), index_t(7 * scale)};
    tc.augment_pad = 2;
    tc.seed = 500;
    train::Trainer trainer(*net, tc);
    const auto history = trainer.fit(train_set, test_set);
    const double acc = history.back().test_accuracy;
    print_row({p.label, fmt(net->num_parameters() / 1e3, 1),
               fmt(100 * acc, 2)});
    csv.write_row(std::vector<std::string>{
        p.label, std::to_string(net->num_parameters()), fmt(acc, 4)});
  }
  std::printf(
      "\nExpected shape (paper): all-layer deployment beats first-layer-\n"
      "only deployment — the Fig. 7 parameter distributions show several\n"
      "mid-depth layers with active quadratic parameters, which first-\n"
      "layer-only schemes cannot exploit.\n");
  return 0;
}
