// Per-layer parameter distribution statistics — the Fig. 7 experiment.
//
// The paper plots, for each conv layer of a trained ResNet-20, the spread
// of the linear parameters (w) and the quadratic parameters (Λᵏ).  Here we
// collect per-layer order statistics for each group and emit them as a
// table/CSV; the paper's qualitative finding (quadratic parameters have
// strongly depth-dependent spread, collapsing toward zero in some layers)
// is asserted by the bench.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace qdnn::analysis {

struct LayerParamStats {
  std::string layer;
  std::string group;
  index_t count = 0;
  float min = 0.0f;
  float max = 0.0f;
  float mean = 0.0f;
  float stddev = 0.0f;
  float q05 = 0.0f;  // 5th percentile
  float q95 = 0.0f;  // 95th percentile
};

// Computes stats for every (layer, group) pair.  `layers` are modules
// whose parameters are grouped under one layer label each — for a ResNet
// pass its conv_layers().
std::vector<LayerParamStats> per_layer_stats(
    const std::vector<nn::Module*>& layers);

// Stats over one flat buffer.
LayerParamStats stats_of(const std::string& layer, const std::string& group,
                         const std::vector<float>& values);

}  // namespace qdnn::analysis
