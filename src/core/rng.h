// Deterministic random number generation for the whole library.
//
// Every experiment in the paper reproduction is seeded; Rng wraps a
// SplitMix64-seeded xoshiro256** generator plus the distributions the
// library needs (uniform, normal via Box–Muller, permutations, Bernoulli).
// No global RNG: each component receives an Rng (or a seed) explicitly so
// runs are bit-reproducible regardless of module construction order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tensor.h"

namespace qdnn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  // Raw 64 random bits (xoshiro256**).
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Standard normal via Box–Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);
  // Uniform integer in [0, n).
  index_t uniform_int(index_t n);
  bool bernoulli(double p);

  // Derive an independent stream (for per-layer init from one master seed).
  Rng split();

  // Fisher–Yates shuffle of [0, n) indices.
  std::vector<index_t> permutation(index_t n);

  void fill_uniform(Tensor& t, float lo, float hi);
  void fill_normal(Tensor& t, float mean, float stddev);

 private:
  std::uint64_t s_[4] = {};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace qdnn
