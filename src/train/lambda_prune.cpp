#include "train/lambda_prune.h"

#include <cmath>

namespace qdnn::train {

double effective_rank(const Tensor& lambda, double relative_threshold) {
  QDNN_CHECK_EQ(lambda.rank(), 2, "Λ tensor must be [units, k]");
  QDNN_CHECK(relative_threshold >= 0.0 && relative_threshold < 1.0,
             "relative threshold in [0, 1)");
  const index_t units = lambda.dim(0), k = lambda.dim(1);
  double total = 0.0;
  for (index_t u = 0; u < units; ++u) {
    float max_mag = 0.0f;
    for (index_t i = 0; i < k; ++i)
      max_mag = std::max(max_mag, std::fabs(lambda.at(u, i)));
    if (max_mag == 0.0f) continue;  // unit contributes rank 0
    index_t live = 0;
    for (index_t i = 0; i < k; ++i)
      if (std::fabs(lambda.at(u, i)) >
          relative_threshold * max_mag)
        ++live;
    total += static_cast<double>(live);
  }
  return units > 0 ? total / static_cast<double>(units) : 0.0;
}

std::vector<LambdaPruneStats> prune_lambdas(nn::Module& model,
                                            double relative_threshold,
                                            index_t fan_in) {
  std::vector<LambdaPruneStats> all;
  for (nn::Parameter* p : model.parameters()) {
    if (p->group != "quadratic_lambda") continue;
    QDNN_CHECK_EQ(p->value.rank(), 2,
                  p->name << ": Λ parameter must be [units, k]");
    LambdaPruneStats stats;
    stats.layer = p->name;
    stats.units = p->value.dim(0);
    stats.rank = p->value.dim(1);

    for (index_t u = 0; u < stats.units; ++u) {
      float max_mag = 0.0f;
      for (index_t i = 0; i < stats.rank; ++i)
        max_mag = std::max(max_mag, std::fabs(p->value.at(u, i)));
      for (index_t i = 0; i < stats.rank; ++i) {
        if (std::fabs(p->value.at(u, i)) <= relative_threshold * max_mag &&
            p->value.at(u, i) != 0.0f) {
          p->value.at(u, i) = 0.0f;
          ++stats.zeroed;
        }
      }
    }
    // Freeze: pruned entries must not be revived by later steps.  Λ has
    // its own lr group, so zeroing the whole tensor's lr is the simplest
    // faithful freeze once pruning is final.
    p->lr_scale = 0.0f;

    stats.mean_effective_rank = effective_rank(p->value, 0.0);
    // A zeroed λ removes itself; its fᵏ row (n weights) is removable when
    // nothing else consumes the feature — true for sum-only layers and a
    // conservative upper bound otherwise.
    stats.removable_params =
        stats.zeroed * (1 + (fan_in > 0 ? fan_in : 0));
    all.push_back(std::move(stats));
  }
  return all;
}

}  // namespace qdnn::train
