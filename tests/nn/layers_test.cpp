// Tests for activations, pooling, dropout, embedding, softmax and
// Sequential composition.
#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck_util.h"
#include "nn/activations.h"
#include "nn/dropout.h"
#include "nn/embedding.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "nn/softmax.h"
#include "nn/linear.h"

namespace qdnn::nn {
namespace {

using qdnn::testing::gradcheck_module;
using qdnn::testing::random_tensor;

// --------------------------- activations ---------------------------------

TEST(ReLU, ClampsNegatives) {
  ReLU relu;
  const Tensor x{Shape{4}, std::vector<float>{-1, 0, 2, -3}};
  const Tensor y = relu.forward(x);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
}

TEST(ReLU, GradientMasksNegatives) {
  ReLU relu;
  const Tensor x{Shape{3}, std::vector<float>{-1, 1, 2}};
  relu.forward(x);
  const Tensor g = relu.backward(Tensor{Shape{3}, 1.0f});
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[1], 1.0f);
}

TEST(GELU, KnownValues) {
  GELU gelu;
  const Tensor x{Shape{3}, std::vector<float>{0.0f, 100.0f, -100.0f}};
  const Tensor y = gelu.forward(x);
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y[1], 100.0f, 1e-3f);   // identity for large positive
  EXPECT_NEAR(y[2], 0.0f, 1e-3f);     // zero for large negative
}

TEST(GELU, Gradcheck) {
  GELU gelu;
  EXPECT_TRUE(gradcheck_module(gelu, random_tensor(Shape{4, 5}, 1)));
}

TEST(Tanh, GradcheckAndRange) {
  Tanh tanh_layer;
  const Tensor y = tanh_layer.forward(random_tensor(Shape{20}, 2, -5, 5));
  EXPECT_LE(y.max(), 1.0f);
  EXPECT_GE(y.min(), -1.0f);
  EXPECT_TRUE(gradcheck_module(tanh_layer, random_tensor(Shape{3, 4}, 3)));
}

TEST(Sigmoid, GradcheckAndRange) {
  Sigmoid sig;
  const Tensor y = sig.forward(random_tensor(Shape{20}, 4, -5, 5));
  EXPECT_LE(y.max(), 1.0f);
  EXPECT_GE(y.min(), 0.0f);
  EXPECT_TRUE(gradcheck_module(sig, random_tensor(Shape{3, 4}, 5)));
}

// ----------------------------- pooling -----------------------------------

TEST(GlobalAvgPool2d, AveragesPlane) {
  GlobalAvgPool2d gap;
  Tensor x{Shape{1, 2, 2, 2}};
  for (index_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  const Tensor y = gap.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), (0 + 1 + 2 + 3) / 4.0f);
  EXPECT_FLOAT_EQ(y.at(0, 1), (4 + 5 + 6 + 7) / 4.0f);
}

TEST(GlobalAvgPool2d, BackwardSpreadsEvenly) {
  GlobalAvgPool2d gap;
  gap.forward(random_tensor(Shape{1, 1, 2, 2}, 6));
  const Tensor g = gap.backward(Tensor{Shape{1, 1}, 4.0f});
  for (index_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(MaxPool2d, SelectsMaximum) {
  MaxPool2d pool(2, 2);
  Tensor x{Shape{1, 1, 4, 4}};
  for (index_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  const Tensor y = pool.forward(x);
  EXPECT_EQ(y.shape(), Shape({1, 1, 2, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.0f);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 15.0f);
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2, 2);
  Tensor x{Shape{1, 1, 2, 2}, std::vector<float>{1, 9, 3, 4}};
  x = x.reshaped(Shape{1, 1, 2, 2});
  pool.forward(x);
  const Tensor g = pool.backward(Tensor{Shape{1, 1, 1, 1}, 5.0f});
  EXPECT_FLOAT_EQ(g[1], 5.0f);  // position of 9
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(AvgPool2d, Averages) {
  AvgPool2d pool(2, 2);
  Tensor x{Shape{1, 1, 2, 2}, std::vector<float>{1, 2, 3, 4}};
  x = x.reshaped(Shape{1, 1, 2, 2});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  const Tensor g = pool.backward(Tensor{Shape{1, 1, 1, 1}, 4.0f});
  for (index_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(g[i], 1.0f);
}

TEST(Pooling, Gradchecks) {
  GlobalAvgPool2d gap;
  EXPECT_TRUE(gradcheck_module(gap, random_tensor(Shape{2, 3, 4, 4}, 7)));
  MaxPool2d maxp(2, 2);
  EXPECT_TRUE(gradcheck_module(maxp, random_tensor(Shape{2, 2, 4, 4}, 8)));
  AvgPool2d avgp(2, 2);
  EXPECT_TRUE(gradcheck_module(avgp, random_tensor(Shape{2, 2, 4, 4}, 9)));
}

// ----------------------------- dropout -----------------------------------

TEST(Dropout, IdentityInEvalMode) {
  Rng rng(10);
  Dropout drop(0.5f, rng);
  drop.set_training(false);
  const Tensor x = random_tensor(Shape{10}, 11);
  EXPECT_EQ(max_abs_diff(drop.forward(x), x), 0.0f);
}

TEST(Dropout, PreservesExpectation) {
  Rng rng(12);
  Dropout drop(0.3f, rng);
  drop.set_training(true);
  const Tensor x{Shape{20000}, 1.0f};
  const Tensor y = drop.forward(x);
  EXPECT_NEAR(y.mean(), 1.0f, 0.03f);
}

TEST(Dropout, MaskAppliedToBackward) {
  Rng rng(13);
  Dropout drop(0.5f, rng);
  drop.set_training(true);
  const Tensor x{Shape{100}, 1.0f};
  const Tensor y = drop.forward(x);
  const Tensor g = drop.backward(Tensor{Shape{100}, 1.0f});
  // Exactly the same positions must be zeroed in forward and backward.
  for (index_t i = 0; i < 100; ++i)
    EXPECT_EQ(y[i] == 0.0f, g[i] == 0.0f) << "i=" << i;
}

TEST(Dropout, InvalidProbabilityThrows) {
  Rng rng(14);
  EXPECT_THROW(Dropout(1.0f, rng), std::runtime_error);
  EXPECT_THROW(Dropout(-0.1f, rng), std::runtime_error);
}

// ---------------------------- embedding ----------------------------------

TEST(Embedding, LooksUpRows) {
  Rng rng(15);
  Embedding emb(10, 4, rng);
  Tensor ids{Shape{2, 3}};
  ids[0] = 1;
  ids[5] = 9;
  const Tensor out = emb.forward(ids);
  EXPECT_EQ(out.shape(), Shape({2, 3, 4}));
  for (index_t d = 0; d < 4; ++d) {
    EXPECT_FLOAT_EQ(out[d], emb.weight().value[1 * 4 + d]);
    EXPECT_FLOAT_EQ(out[5 * 4 + d], emb.weight().value[9 * 4 + d]);
  }
}

TEST(Embedding, BackwardScattersIntoRows) {
  Rng rng(16);
  Embedding emb(5, 2, rng);
  Tensor ids{Shape{1, 2}};
  ids[0] = 3;
  ids[1] = 3;  // same row twice: grads must accumulate
  emb.forward(ids);
  Tensor g{Shape{1, 2, 2}, 1.0f};
  emb.backward(g);
  EXPECT_FLOAT_EQ(emb.weight().grad[3 * 2 + 0], 2.0f);
  EXPECT_FLOAT_EQ(emb.weight().grad[0], 0.0f);
}

TEST(Embedding, OutOfVocabThrows) {
  Rng rng(17);
  Embedding emb(4, 2, rng);
  Tensor ids{Shape{1, 1}};
  ids[0] = 7;
  EXPECT_THROW(emb.forward(ids), std::runtime_error);
}

// ----------------------------- softmax -----------------------------------

TEST(Softmax, RowsSumToOne) {
  Softmax sm;
  const Tensor y = sm.forward(random_tensor(Shape{5, 7}, 18, -3, 3));
  for (index_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (index_t j = 0; j < 7; ++j) sum += y.at(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, StableForLargeLogits) {
  Softmax sm;
  const Tensor x{Shape{1, 3}, std::vector<float>{1000, 1000, 999}};
  const Tensor y = sm.forward(x);
  EXPECT_TRUE(y.all_finite());
  EXPECT_GT(y[0], y[2]);
}

TEST(Softmax, Gradcheck) {
  Softmax sm;
  EXPECT_TRUE(gradcheck_module(sm, random_tensor(Shape{3, 5}, 19)));
}

// ---------------------------- sequential ---------------------------------

TEST(Sequential, ComposesForwardAndBackward) {
  Rng rng(20);
  Sequential seq;
  seq.emplace<Linear>(4, 8, rng, true, "l1");
  seq.emplace<ReLU>();
  seq.emplace<Linear>(8, 2, rng, true, "l2");
  EXPECT_EQ(seq.size(), 3);
  EXPECT_EQ(seq.parameters().size(), 4u);
  const Tensor y = seq.forward(random_tensor(Shape{3, 4}, 21));
  EXPECT_EQ(y.shape(), Shape({3, 2}));
  EXPECT_TRUE(gradcheck_module(seq, random_tensor(Shape{2, 4}, 22)));
}

TEST(Sequential, PropagatesTrainingMode) {
  Rng rng(23);
  Sequential seq;
  auto* drop = seq.emplace<Dropout>(0.5f, rng);
  seq.set_training(false);
  EXPECT_FALSE(drop->training());
  seq.set_training(true);
  EXPECT_TRUE(drop->training());
}

}  // namespace
}  // namespace qdnn::nn
