// Integration tests for the seq2seq trainer: the Transformer must
// actually learn the synthetic translation grammar, and BLEU evaluation
// must wire tokenizers/decoding/IDs together correctly.
#include <gtest/gtest.h>

#include "train/seq2seq_trainer.h"

namespace qdnn::train {
namespace {

data::TranslationCorpus tiny_corpus() {
  data::TranslationConfig config;
  config.content_words = 24;
  config.proper_nouns = 4;
  config.verbs = 4;
  config.compounds = 3;
  config.min_len = 3;
  config.max_len = 5;
  config.train_sentences = 300;
  config.test_sentences = 24;
  return make_translation_corpus(config);
}

models::TransformerConfig tiny_model(bool quadratic) {
  models::TransformerConfig config;
  config.src_vocab = 64;
  config.tgt_vocab = 64;
  config.d_model = 32;
  config.n_heads = 2;
  config.n_layers = 1;
  config.d_ff = 64;
  config.max_len = 16;
  config.dropout = 0.0f;
  config.seed = 11;
  if (quadratic) {
    config.proj_dim = 16;  // heads=2, rank+1=4 compatible
    config.spec = quadratic::NeuronSpec::proposed(3, 1e-1f);
  } else {
    config.proj_dim = 32;
  }
  return config;
}

TEST(Seq2Seq, LossDecreasesAndTokensLearned) {
  const auto corpus = tiny_corpus();
  models::Transformer model(tiny_model(false));
  Seq2SeqConfig tc;
  tc.epochs = 8;
  tc.batch_size = 32;
  tc.peak_lr = 5e-3f;
  tc.warmup_steps = 40;
  Seq2SeqTrainer trainer(model, tc);
  const auto history = trainer.fit(corpus);
  ASSERT_EQ(history.size(), 8u);
  EXPECT_LT(history.back().train_loss, history.front().train_loss * 0.7);
  EXPECT_GT(history.back().token_accuracy, 0.35);
}

TEST(Seq2Seq, QuadraticModelTrainsAndIsSmaller) {
  const auto corpus = tiny_corpus();
  models::Transformer baseline(tiny_model(false));
  models::Transformer quad(tiny_model(true));
  EXPECT_LT(quad.num_parameters(), baseline.num_parameters());

  Seq2SeqConfig tc;
  tc.epochs = 6;
  tc.batch_size = 32;
  tc.peak_lr = 5e-3f;
  tc.warmup_steps = 40;
  Seq2SeqTrainer trainer(quad, tc);
  const auto history = trainer.fit(corpus);
  EXPECT_GT(history.back().token_accuracy, 0.3);
}

TEST(Seq2Seq, BleuEvaluationProducesAllSettings) {
  const auto corpus = tiny_corpus();
  models::Transformer model(tiny_model(false));
  Seq2SeqConfig tc;
  tc.epochs = 2;
  tc.batch_size = 32;
  tc.peak_lr = 5e-3f;
  tc.warmup_steps = 40;
  Seq2SeqTrainer trainer(model, tc);
  trainer.fit(corpus);
  for (auto kind :
       {data::TokenizerKind::k13a, data::TokenizerKind::kInternational})
    for (bool cased : {true, false}) {
      const data::BleuResult result =
          trainer.evaluate_bleu(corpus, {kind, cased}, /*max_sentences=*/8);
      EXPECT_GE(result.bleu, 0.0);
      EXPECT_LE(result.bleu, 100.0);
      EXPECT_GT(result.ref_length, 0);
    }
}

TEST(Seq2Seq, PerfectModelScores100Bleu) {
  // Feed the references themselves through the BLEU path: surface
  // rendering + tokenization must round-trip to exactly 100.
  const auto corpus = tiny_corpus();
  std::vector<std::vector<std::string>> hyps, refs;
  for (const auto& ex : corpus.test) {
    const std::string surface =
        data::surface_from_ids(corpus.tgt_vocab, ex.tgt_ids);
    hyps.push_back(data::tokenize(surface, data::TokenizerKind::k13a, true));
    refs.push_back(
        data::tokenize(ex.tgt_surface, data::TokenizerKind::k13a, true));
  }
  EXPECT_NEAR(data::corpus_bleu(hyps, refs).bleu, 100.0, 1e-9);
}

}  // namespace
}  // namespace qdnn::train
