#include "data/translation.h"

#include <algorithm>
#include <cctype>

namespace qdnn::data {

namespace {

// Word inventory built deterministically from the config.  Index spaces:
//   [0, content_words)                         common content words
//   [content_words, +proper_nouns)             proper nouns (capitalized)
//   [.., +verbs)                               verbs (reordered class)
// Target-side surface forms add hyphenated compounds for the first
// `compounds` content words.
struct Inventory {
  std::vector<std::string> src_words;
  std::vector<std::string> tgt_words;
  index_t content = 0, proper = 0, verbs = 0;

  index_t total() const { return content + proper + verbs; }
  bool is_proper(index_t w) const {
    return w >= content && w < content + proper;
  }
  bool is_verb(index_t w) const { return w >= content + proper; }
};

Inventory build_inventory(const TranslationConfig& config) {
  Inventory inv;
  inv.content = config.content_words;
  inv.proper = config.proper_nouns;
  inv.verbs = config.verbs;
  for (index_t i = 0; i < inv.content; ++i) {
    inv.src_words.push_back("wort" + std::to_string(i));
    if (i < config.compounds) {
      // Hyphenated compound on the target side only.
      inv.tgt_words.push_back("word" + std::to_string(i) + "-part" +
                              std::to_string(i % 4));
    } else {
      inv.tgt_words.push_back("word" + std::to_string(i));
    }
  }
  for (index_t i = 0; i < inv.proper; ++i) {
    // Proper nouns share a lowercase twin among content words (ids i),
    // which is what makes cased vs uncased BLEU diverge.
    inv.src_words.push_back("Name" + std::to_string(i));
    inv.tgt_words.push_back("Word" + std::to_string(i));
  }
  for (index_t i = 0; i < inv.verbs; ++i) {
    inv.src_words.push_back("machen" + std::to_string(i));
    inv.tgt_words.push_back("make" + std::to_string(i));
  }
  return inv;
}

constexpr const char* kPunct[] = {".", "!", "?"};

}  // namespace

std::string surface_from_ids(const Vocab& tgt_vocab,
                             const std::vector<index_t>& ids) {
  std::string out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string& w = tgt_vocab.word(ids[i]);
    const bool is_punct = (w == "." || w == "!" || w == "?");
    if (!out.empty() && !is_punct) out += ' ';
    out += w;
  }
  // Sentence-initial capitalization.
  if (!out.empty())
    out[0] = static_cast<char>(
        std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

TranslationCorpus make_translation_corpus(const TranslationConfig& config) {
  QDNN_CHECK(config.min_len >= 2 && config.max_len >= config.min_len,
             "translation: bad sentence length range");
  const Inventory inv = build_inventory(config);
  TranslationCorpus corpus;
  // Register all words (and punctuation) in both vocabularies.
  std::vector<index_t> src_of(static_cast<std::size_t>(inv.total()));
  std::vector<index_t> tgt_of(static_cast<std::size_t>(inv.total()));
  for (index_t w = 0; w < inv.total(); ++w) {
    src_of[static_cast<std::size_t>(w)] =
        corpus.src_vocab.add(inv.src_words[static_cast<std::size_t>(w)]);
    tgt_of[static_cast<std::size_t>(w)] =
        corpus.tgt_vocab.add(inv.tgt_words[static_cast<std::size_t>(w)]);
  }
  std::vector<index_t> src_punct, tgt_punct;
  for (const char* p : kPunct) {
    src_punct.push_back(corpus.src_vocab.add(p));
    tgt_punct.push_back(corpus.tgt_vocab.add(p));
  }

  Rng rng(config.seed);
  auto generate = [&](index_t count, std::vector<TranslationExample>& out) {
    out.reserve(static_cast<std::size_t>(count));
    for (index_t s = 0; s < count; ++s) {
      const index_t len =
          config.min_len + rng.uniform_int(config.max_len - config.min_len + 1);
      // Sample content: len-1 non-verb words plus exactly one verb,
      // clause-final in the source.
      std::vector<index_t> words;
      for (index_t i = 0; i + 1 < len; ++i) {
        index_t w;
        do {
          w = rng.uniform_int(inv.content + inv.proper);
        } while (false);
        words.push_back(w);
      }
      const index_t verb =
          inv.content + inv.proper + rng.uniform_int(inv.verbs);
      const index_t punct = rng.uniform_int(3);

      TranslationExample ex;
      // Source order: content words, verb last (German-ish), punct.
      for (index_t w : words)
        ex.src_ids.push_back(src_of[static_cast<std::size_t>(w)]);
      ex.src_ids.push_back(src_of[static_cast<std::size_t>(verb)]);
      ex.src_ids.push_back(src_punct[static_cast<std::size_t>(punct)]);
      // Target order: first word, verb second (English-ish), rest, punct.
      std::vector<index_t> tgt_words;
      tgt_words.push_back(words.front());
      tgt_words.push_back(verb);
      for (std::size_t i = 1; i < words.size(); ++i)
        tgt_words.push_back(words[i]);
      for (index_t w : tgt_words)
        ex.tgt_ids.push_back(tgt_of[static_cast<std::size_t>(w)]);
      ex.tgt_ids.push_back(tgt_punct[static_cast<std::size_t>(punct)]);
      ex.tgt_surface = surface_from_ids(corpus.tgt_vocab, ex.tgt_ids);
      out.push_back(std::move(ex));
    }
  };
  generate(config.train_sentences, corpus.train);
  generate(config.test_sentences, corpus.test);
  return corpus;
}

Seq2SeqBatch make_batch(const std::vector<TranslationExample>& examples,
                        index_t first, index_t count) {
  QDNN_CHECK(first >= 0 &&
                 first + count <= static_cast<index_t>(examples.size()),
             "make_batch: range out of corpus");
  QDNN_CHECK(count > 0, "make_batch: empty batch");
  index_t ts = 0, tt = 0;
  for (index_t i = first; i < first + count; ++i) {
    const auto& ex = examples[static_cast<std::size_t>(i)];
    ts = std::max(ts, static_cast<index_t>(ex.src_ids.size()));
    // +1 for <eos> on the output side / <bos> on the input side.
    tt = std::max(tt, static_cast<index_t>(ex.tgt_ids.size()) + 1);
  }

  Seq2SeqBatch batch;
  batch.src = Tensor{Shape{count, ts}, static_cast<float>(Vocab::kPad)};
  batch.tgt_in = Tensor{Shape{count, tt}, static_cast<float>(Vocab::kPad)};
  batch.tgt_out.assign(static_cast<std::size_t>(count * tt), Vocab::kPad);
  batch.src_lengths.resize(static_cast<std::size_t>(count));

  for (index_t i = 0; i < count; ++i) {
    const auto& ex = examples[static_cast<std::size_t>(first + i)];
    batch.src_lengths[static_cast<std::size_t>(i)] =
        static_cast<index_t>(ex.src_ids.size());
    for (std::size_t j = 0; j < ex.src_ids.size(); ++j)
      batch.src.at(i, static_cast<index_t>(j)) =
          static_cast<float>(ex.src_ids[j]);
    batch.tgt_in.at(i, 0) = static_cast<float>(Vocab::kBos);
    for (std::size_t j = 0; j < ex.tgt_ids.size(); ++j) {
      if (static_cast<index_t>(j) + 1 < tt)
        batch.tgt_in.at(i, static_cast<index_t>(j) + 1) =
            static_cast<float>(ex.tgt_ids[j]);
      batch.tgt_out[static_cast<std::size_t>(i * tt + static_cast<index_t>(j))] =
          ex.tgt_ids[j];
    }
    batch.tgt_out[static_cast<std::size_t>(
        i * tt + static_cast<index_t>(ex.tgt_ids.size()))] = Vocab::kEos;
  }
  return batch;
}

}  // namespace qdnn::data
