#include "quadratic/quad_conv.h"

#include <cmath>
#include <vector>

#include "linalg/gemm.h"
#include "nn/conv2d.h"
#include "quadratic/kervolution.h"

namespace qdnn::quadratic {

namespace {

// Per-sample output assembly shared by ProposedQuadConv2d::forward and
// ::forward_into — one definition so training and serving cannot drift.
// lin is [filters, n_cols], f_s is [filters*rank, n_cols]; writes the
// channel interleave [y_f, f_1..f_k] per filter into out_s.
void assemble_proposed_conv_sample(const float* lin, const float* f_s,
                                   const float* lambda, const float* bias,
                                   index_t filters, index_t rank,
                                   index_t n_cols, bool emit_features,
                                   float* out_s) {
  const index_t ch_per_filter = emit_features ? rank + 1 : 1;
  for (index_t f = 0; f < filters; ++f) {
    const float* lam = lambda + f * rank;
    float* y_row = out_s + f * ch_per_filter * n_cols;
    const float* lin_row = lin + f * n_cols;
    const float b = bias[f];
    for (index_t j = 0; j < n_cols; ++j) y_row[j] = lin_row[j] + b;
    for (index_t i = 0; i < rank; ++i) {
      const float* f_row = f_s + (f * rank + i) * n_cols;
      const float l = lam[i];
      for (index_t j = 0; j < n_cols; ++j)
        y_row[j] += l * f_row[j] * f_row[j];
      if (emit_features) {
        float* o_row = y_row + (1 + i) * n_cols;
        for (index_t j = 0; j < n_cols; ++j) o_row[j] = f_row[j];
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ProposedQuadConv2d
// ---------------------------------------------------------------------------

ProposedQuadConv2d::ProposedQuadConv2d(index_t in_channels, index_t filters,
                                       index_t kernel, index_t stride,
                                       index_t padding, index_t rank,
                                       Rng& rng, float lambda_lr_scale,
                                       std::string name, bool emit_features)
    : geometry_{in_channels, kernel, stride, padding},
      filters_(filters),
      rank_(rank),
      emit_features_(emit_features),
      name_(std::move(name)),
      w_(name_ + ".w", Tensor{Shape{filters, geometry_.patch_size()}}),
      q_(name_ + ".q",
         Tensor{Shape{filters * rank, geometry_.patch_size()}}),
      lambda_(name_ + ".lambda", Tensor{Shape{filters, rank}}),
      b_(name_ + ".b", Tensor{Shape{filters}}) {
  QDNN_CHECK(filters > 0 && rank > 0, name_ << ": dims must be positive");
  const index_t patch = geometry_.patch_size();
  nn::kaiming_normal(w_.value, patch, rng);
  nn::kaiming_normal(q_.value, patch, rng);
  nn::lambda_init(lambda_.value, rng);
  q_.group = "quadratic_q";
  lambda_.group = "quadratic_lambda";
  lambda_.lr_scale = lambda_lr_scale;
  lambda_.decay = false;
  b_.decay = false;
}

Tensor ProposedQuadConv2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  cached_input_ = input;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;
  const index_t fr = filters_ * rank_;

  Tensor out{Shape{n, out_channels(), oh, ow}};
  cached_f_ = Tensor{Shape{n, fr, n_cols}};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> lin(static_cast<std::size_t>(filters_ * n_cols));
  for (index_t s = 0; s < n; ++s) {
    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    // Linear responses y₁ and intermediate features fᵏ in two GEMMs.
    linalg::gemm(false, false, filters_, n_cols, patch, 1.0f,
                 w_.value.data(), patch, cols.data(), n_cols, 0.0f,
                 lin.data(), n_cols);
    float* f_s = cached_f_.data() + s * fr * n_cols;
    linalg::gemm(false, false, fr, n_cols, patch, 1.0f, q_.value.data(),
                 patch, cols.data(), n_cols, 0.0f, f_s, n_cols);

    assemble_proposed_conv_sample(lin.data(), f_s, lambda_.value.data(),
                                  b_.value.data(), filters_, rank_, n_cols,
                                  emit_features_,
                                  out.data() + s * out_channels() * n_cols);
  }
  return out;
}

Shape ProposedQuadConv2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input_shape[1], geometry_.in_channels,
                name_ << ": channels");
  return Shape{input_shape[0], out_channels(),
               geometry_.out_extent(input_shape[2]),
               geometry_.out_extent(input_shape[3])};
}

void ProposedQuadConv2d::forward_into(const ConstTensorView& input,
                                      const TensorView& output, Workspace& ws) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;
  const index_t fr = filters_ * rank_;
  QDNN_CHECK(output.rank() == 4 && output.dim(0) == n &&
                 output.dim(1) == out_channels() && output.dim(2) == oh &&
                 output.dim(3) == ow,
             name_ << ": bad output view " << output.shape());

  float* cols = ws.alloc(patch * n_cols);
  float* lin = ws.alloc(filters_ * n_cols);
  float* f_s = ws.alloc(fr * n_cols);
  for (index_t s = 0; s < n; ++s) {
    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols);
    linalg::gemm(false, false, filters_, n_cols, patch, 1.0f,
                 w_.value.data(), patch, cols, n_cols, 0.0f, lin, n_cols,
                 nullptr);
    linalg::gemm(false, false, fr, n_cols, patch, 1.0f, q_.value.data(),
                 patch, cols, n_cols, 0.0f, f_s, n_cols, nullptr);

    assemble_proposed_conv_sample(
        lin, f_s, lambda_.value.data(), b_.value.data(), filters_, rank_,
        n_cols, emit_features_,
        output.data() + s * out_channels() * n_cols);
  }
}

void ProposedQuadConv2d::freeze() {
  cached_input_ = Tensor{};
  cached_f_ = Tensor{};
  Module::freeze();
}

Tensor ProposedQuadConv2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const Tensor& input = cached_input_;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;
  const index_t fr = filters_ * rank_;
  QDNN_CHECK(grad_output.shape() == Shape({n, out_channels(), oh, ow}),
             name_ << ": grad shape " << grad_output.shape());

  Tensor grad_input{input.shape()};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> grad_cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> g_y(static_cast<std::size_t>(filters_ * n_cols));
  std::vector<float> g_f(static_cast<std::size_t>(fr * n_cols));

  for (index_t s = 0; s < n; ++s) {
    const float* g_s = grad_output.data() + s * out_channels() * n_cols;
    const float* f_s = cached_f_.data() + s * fr * n_cols;

    // Assemble effective gradients:
    //   g_y   = dL/dy (the filter's quadratic-output channel)
    //   g_f_i = dL/df_i (direct, from the emitted channel)
    //           + 2 λ_i f_i g_y (through y's quadratic term)
    const index_t ch_per_filter = emit_features_ ? rank_ + 1 : 1;
    for (index_t f = 0; f < filters_; ++f) {
      const float* gy_row = g_s + f * ch_per_filter * n_cols;
      float* gyd = g_y.data() + f * n_cols;
      float g_b = 0.0f;
      for (index_t j = 0; j < n_cols; ++j) {
        gyd[j] = gy_row[j];
        g_b += gy_row[j];
      }
      b_.grad[f] += g_b;
      const float* lam = lambda_.value.data() + f * rank_;
      float* lam_g = lambda_.grad.data() + f * rank_;
      for (index_t i = 0; i < rank_; ++i) {
        const float* f_row = f_s + (f * rank_ + i) * n_cols;
        // Emitted f channels contribute their own gradient; in sum-only
        // mode the only path into fᵏ is through y's quadratic term.
        const float* gf_row = emit_features_ ? gy_row + (1 + i) * n_cols
                                             : nullptr;
        float* gfd = g_f.data() + (f * rank_ + i) * n_cols;
        const float l2 = 2.0f * lam[i];
        float g_l = 0.0f;
        for (index_t j = 0; j < n_cols; ++j) {
          g_l += gyd[j] * f_row[j] * f_row[j];
          gfd[j] = (gf_row ? gf_row[j] : 0.0f) + l2 * f_row[j] * gyd[j];
        }
        lam_g[i] += g_l;
      }
    }

    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    // dW += g_y colsᵀ, dQ += g_f colsᵀ
    linalg::gemm(false, true, filters_, patch, n_cols, 1.0f, g_y.data(),
                 n_cols, cols.data(), n_cols, 1.0f, w_.grad.data(), patch);
    linalg::gemm(false, true, fr, patch, n_cols, 1.0f, g_f.data(), n_cols,
                 cols.data(), n_cols, 1.0f, q_.grad.data(), patch);
    // d(cols) = Wᵀ g_y + Qᵀ g_f
    linalg::gemm(true, false, patch, n_cols, filters_, 1.0f,
                 w_.value.data(), patch, g_y.data(), n_cols, 0.0f,
                 grad_cols.data(), n_cols);
    linalg::gemm(true, false, patch, n_cols, fr, 1.0f, q_.value.data(),
                 patch, g_f.data(), n_cols, 1.0f, grad_cols.data(), n_cols);
    nn::col2im(grad_cols.data(), h, w, geometry_,
               grad_input.data() + s * geometry_.in_channels * h * w);
  }
  return grad_input;
}

std::vector<nn::Parameter*> ProposedQuadConv2d::parameters() {
  return {&w_, &q_, &lambda_, &b_};
}

// ---------------------------------------------------------------------------
// FactoredQuadConv2d
// ---------------------------------------------------------------------------

FactoredQuadConv2d::FactoredQuadConv2d(index_t in_channels,
                                       index_t out_channels, index_t kernel,
                                       index_t stride, index_t padding,
                                       NeuronKind mode, Rng& rng,
                                       std::string name)
    : geometry_{in_channels, kernel, stride, padding},
      filters_(out_channels),
      mode_(mode),
      name_(std::move(name)) {
  QDNN_CHECK(mode == NeuronKind::kQuad1 || mode == NeuronKind::kQuad2 ||
                 mode == NeuronKind::kBuKarpatne,
             name_ << ": mode must be a rank-1 factored family");
  const index_t patch = geometry_.patch_size();
  w1_ = nn::Parameter(name_ + ".w1", Tensor{Shape{filters_, patch}});
  w2_ = nn::Parameter(name_ + ".w2", Tensor{Shape{filters_, patch}});
  const float f_std = std::sqrt(1.0f / static_cast<float>(patch));
  rng.fill_normal(w1_.value, 0.0f, f_std);
  rng.fill_normal(w2_.value, 0.0f, f_std);
  w1_.group = "quadratic_q";
  w2_.group = "quadratic_q";
  if (has_w3()) {
    w3_ = nn::Parameter(name_ + ".w3", Tensor{Shape{filters_, patch}});
    nn::kaiming_normal(w3_.value, patch, rng);
  }
  c_ = nn::Parameter(name_ + ".c", Tensor{Shape{filters_}});
  c_.decay = false;
}

Shape FactoredQuadConv2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input_shape[1], geometry_.in_channels,
                name_ << ": channels");
  return Shape{input_shape[0], filters_,
               geometry_.out_extent(input_shape[2]),
               geometry_.out_extent(input_shape[3])};
}

Tensor FactoredQuadConv2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  cached_input_ = input;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;

  cached_a_ = Tensor{Shape{n, filters_, n_cols}};
  cached_b_ = Tensor{Shape{n, filters_, n_cols}};
  Tensor out{Shape{n, filters_, oh, ow}};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> cols2;
  if (squares_input()) cols2.resize(cols.size());

  for (index_t s = 0; s < n; ++s) {
    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    float* a_s = cached_a_.data() + s * filters_ * n_cols;
    float* b_s = cached_b_.data() + s * filters_ * n_cols;
    float* out_s = out.data() + s * filters_ * n_cols;
    linalg::gemm(false, false, filters_, n_cols, patch, 1.0f,
                 w1_.value.data(), patch, cols.data(), n_cols, 0.0f, a_s,
                 n_cols);
    linalg::gemm(false, false, filters_, n_cols, patch, 1.0f,
                 w2_.value.data(), patch, cols.data(), n_cols, 0.0f, b_s,
                 n_cols);
    if (has_w3()) {
      const float* src = cols.data();
      if (squares_input()) {
        for (std::size_t i = 0; i < cols.size(); ++i)
          cols2[i] = cols[i] * cols[i];
        src = cols2.data();
      }
      linalg::gemm(false, false, filters_, n_cols, patch, 1.0f,
                   w3_.value.data(), patch, src, n_cols, 0.0f, out_s,
                   n_cols);
    }
    for (index_t f = 0; f < filters_; ++f) {
      const float bias = c_.value[f];
      const float* a = a_s + f * n_cols;
      const float* bb = b_s + f * n_cols;
      float* o = out_s + f * n_cols;
      if (mode_ == NeuronKind::kBuKarpatne) {
        for (index_t j = 0; j < n_cols; ++j)
          o[j] += a[j] * bb[j] + a[j] + bias;
      } else {
        for (index_t j = 0; j < n_cols; ++j) o[j] += a[j] * bb[j] + bias;
      }
    }
  }
  return out;
}

Tensor FactoredQuadConv2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const Tensor& input = cached_input_;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;

  Tensor grad_input{input.shape()};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> cols2;
  if (squares_input()) cols2.resize(cols.size());
  std::vector<float> grad_cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> g_a(static_cast<std::size_t>(filters_ * n_cols));
  std::vector<float> g_b(static_cast<std::size_t>(filters_ * n_cols));

  for (index_t s = 0; s < n; ++s) {
    const float* g_s = grad_output.data() + s * filters_ * n_cols;
    const float* a_s = cached_a_.data() + s * filters_ * n_cols;
    const float* b_s = cached_b_.data() + s * filters_ * n_cols;
    for (index_t f = 0; f < filters_; ++f) {
      const float* g = g_s + f * n_cols;
      const float* a = a_s + f * n_cols;
      const float* bb = b_s + f * n_cols;
      float* ga = g_a.data() + f * n_cols;
      float* gb = g_b.data() + f * n_cols;
      float g_bias = 0.0f;
      for (index_t j = 0; j < n_cols; ++j) {
        ga[j] = g[j] * bb[j];
        gb[j] = g[j] * a[j];
        if (mode_ == NeuronKind::kBuKarpatne) ga[j] += g[j];
        g_bias += g[j];
      }
      c_.grad[f] += g_bias;
    }

    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    linalg::gemm(false, true, filters_, patch, n_cols, 1.0f, g_a.data(),
                 n_cols, cols.data(), n_cols, 1.0f, w1_.grad.data(), patch);
    linalg::gemm(false, true, filters_, patch, n_cols, 1.0f, g_b.data(),
                 n_cols, cols.data(), n_cols, 1.0f, w2_.grad.data(), patch);
    linalg::gemm(true, false, patch, n_cols, filters_, 1.0f,
                 w1_.value.data(), patch, g_a.data(), n_cols, 0.0f,
                 grad_cols.data(), n_cols);
    linalg::gemm(true, false, patch, n_cols, filters_, 1.0f,
                 w2_.value.data(), patch, g_b.data(), n_cols, 1.0f,
                 grad_cols.data(), n_cols);

    if (has_w3()) {
      if (squares_input()) {
        for (std::size_t i = 0; i < cols.size(); ++i)
          cols2[i] = cols[i] * cols[i];
        linalg::gemm(false, true, filters_, patch, n_cols, 1.0f, g_s,
                     n_cols, cols2.data(), n_cols, 1.0f, w3_.grad.data(),
                     patch);
        // d(cols) of w₃ᵀ(col⊙col): 2·col ⊙ (W₃ᵀ g); accumulate into a
        // temp then merge so the factor applies only to this term.
        std::vector<float> tmp(static_cast<std::size_t>(patch * n_cols));
        linalg::gemm(true, false, patch, n_cols, filters_, 1.0f,
                     w3_.value.data(), patch, g_s, n_cols, 0.0f, tmp.data(),
                     n_cols);
        for (std::size_t i = 0; i < tmp.size(); ++i)
          grad_cols[i] += 2.0f * tmp[i] * cols[i];
      } else {
        linalg::gemm(false, true, filters_, patch, n_cols, 1.0f, g_s,
                     n_cols, cols.data(), n_cols, 1.0f, w3_.grad.data(),
                     patch);
        linalg::gemm(true, false, patch, n_cols, filters_, 1.0f,
                     w3_.value.data(), patch, g_s, n_cols, 1.0f,
                     grad_cols.data(), n_cols);
      }
    }
    nn::col2im(grad_cols.data(), h, w, geometry_,
               grad_input.data() + s * geometry_.in_channels * h * w);
  }
  return grad_input;
}

std::vector<nn::Parameter*> FactoredQuadConv2d::parameters() {
  std::vector<nn::Parameter*> params{&w1_, &w2_};
  if (has_w3()) params.push_back(&w3_);
  params.push_back(&c_);
  return params;
}

// ---------------------------------------------------------------------------
// LowRankQuadConv2d
// ---------------------------------------------------------------------------

LowRankQuadConv2d::LowRankQuadConv2d(index_t in_channels,
                                     index_t out_channels, index_t kernel,
                                     index_t stride, index_t padding,
                                     index_t rank, Rng& rng,
                                     std::string name)
    : geometry_{in_channels, kernel, stride, padding},
      filters_(out_channels),
      rank_(rank),
      name_(std::move(name)) {
  QDNN_CHECK(rank > 0, name_ << ": rank must be positive");
  const index_t patch = geometry_.patch_size();
  q1_ = nn::Parameter(name_ + ".q1", Tensor{Shape{filters_ * rank, patch}});
  q2_ = nn::Parameter(name_ + ".q2", Tensor{Shape{filters_ * rank, patch}});
  w_ = nn::Parameter(name_ + ".w", Tensor{Shape{filters_, patch}});
  b_ = nn::Parameter(name_ + ".b", Tensor{Shape{filters_}});
  const float f_std = std::sqrt(1.0f / static_cast<float>(patch));
  rng.fill_normal(q1_.value, 0.0f, f_std);
  rng.fill_normal(q2_.value, 0.0f, f_std);
  nn::kaiming_normal(w_.value, patch, rng);
  q1_.group = "quadratic_q";
  q2_.group = "quadratic_q";
  b_.decay = false;
}

Shape LowRankQuadConv2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input_shape[1], geometry_.in_channels,
                name_ << ": channels");
  return Shape{input_shape[0], filters_,
               geometry_.out_extent(input_shape[2]),
               geometry_.out_extent(input_shape[3])};
}

Tensor LowRankQuadConv2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  cached_input_ = input;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;
  const index_t fr = filters_ * rank_;

  cached_a_ = Tensor{Shape{n, fr, n_cols}};
  cached_c_ = Tensor{Shape{n, fr, n_cols}};
  Tensor out{Shape{n, filters_, oh, ow}};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  for (index_t s = 0; s < n; ++s) {
    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    float* a_s = cached_a_.data() + s * fr * n_cols;
    float* c_s = cached_c_.data() + s * fr * n_cols;
    float* out_s = out.data() + s * filters_ * n_cols;
    linalg::gemm(false, false, fr, n_cols, patch, 1.0f, q1_.value.data(),
                 patch, cols.data(), n_cols, 0.0f, a_s, n_cols);
    linalg::gemm(false, false, fr, n_cols, patch, 1.0f, q2_.value.data(),
                 patch, cols.data(), n_cols, 0.0f, c_s, n_cols);
    linalg::gemm(false, false, filters_, n_cols, patch, 1.0f,
                 w_.value.data(), patch, cols.data(), n_cols, 0.0f, out_s,
                 n_cols);
    for (index_t f = 0; f < filters_; ++f) {
      float* o = out_s + f * n_cols;
      const float bias = b_.value[f];
      for (index_t j = 0; j < n_cols; ++j) o[j] += bias;
      for (index_t i = 0; i < rank_; ++i) {
        const float* a = a_s + (f * rank_ + i) * n_cols;
        const float* c = c_s + (f * rank_ + i) * n_cols;
        for (index_t j = 0; j < n_cols; ++j) o[j] += a[j] * c[j];
      }
    }
  }
  return out;
}

Tensor LowRankQuadConv2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const Tensor& input = cached_input_;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;
  const index_t fr = filters_ * rank_;

  Tensor grad_input{input.shape()};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> grad_cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> g_a(static_cast<std::size_t>(fr * n_cols));
  std::vector<float> g_c(static_cast<std::size_t>(fr * n_cols));

  for (index_t s = 0; s < n; ++s) {
    const float* g_s = grad_output.data() + s * filters_ * n_cols;
    const float* a_s = cached_a_.data() + s * fr * n_cols;
    const float* c_s = cached_c_.data() + s * fr * n_cols;
    for (index_t f = 0; f < filters_; ++f) {
      const float* g = g_s + f * n_cols;
      float g_bias = 0.0f;
      for (index_t j = 0; j < n_cols; ++j) g_bias += g[j];
      b_.grad[f] += g_bias;
      for (index_t i = 0; i < rank_; ++i) {
        const float* a = a_s + (f * rank_ + i) * n_cols;
        const float* c = c_s + (f * rank_ + i) * n_cols;
        float* ga = g_a.data() + (f * rank_ + i) * n_cols;
        float* gc = g_c.data() + (f * rank_ + i) * n_cols;
        for (index_t j = 0; j < n_cols; ++j) {
          ga[j] = g[j] * c[j];
          gc[j] = g[j] * a[j];
        }
      }
    }

    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    linalg::gemm(false, true, fr, patch, n_cols, 1.0f, g_a.data(), n_cols,
                 cols.data(), n_cols, 1.0f, q1_.grad.data(), patch);
    linalg::gemm(false, true, fr, patch, n_cols, 1.0f, g_c.data(), n_cols,
                 cols.data(), n_cols, 1.0f, q2_.grad.data(), patch);
    linalg::gemm(false, true, filters_, patch, n_cols, 1.0f, g_s, n_cols,
                 cols.data(), n_cols, 1.0f, w_.grad.data(), patch);
    linalg::gemm(true, false, patch, n_cols, fr, 1.0f, q1_.value.data(),
                 patch, g_a.data(), n_cols, 0.0f, grad_cols.data(), n_cols);
    linalg::gemm(true, false, patch, n_cols, fr, 1.0f, q2_.value.data(),
                 patch, g_c.data(), n_cols, 1.0f, grad_cols.data(), n_cols);
    linalg::gemm(true, false, patch, n_cols, filters_, 1.0f,
                 w_.value.data(), patch, g_s, n_cols, 1.0f,
                 grad_cols.data(), n_cols);
    nn::col2im(grad_cols.data(), h, w, geometry_,
               grad_input.data() + s * geometry_.in_channels * h * w);
  }
  return grad_input;
}

std::vector<nn::Parameter*> LowRankQuadConv2d::parameters() {
  return {&q1_, &q2_, &w_, &b_};
}

// ---------------------------------------------------------------------------
// GeneralQuadConv2d
// ---------------------------------------------------------------------------

GeneralQuadConv2d::GeneralQuadConv2d(index_t in_channels,
                                     index_t out_channels, index_t kernel,
                                     index_t stride, index_t padding,
                                     bool include_linear, Rng& rng,
                                     std::string name)
    : geometry_{in_channels, kernel, stride, padding},
      filters_(out_channels),
      include_linear_(include_linear),
      name_(std::move(name)) {
  const index_t patch = geometry_.patch_size();
  m_ = nn::Parameter(name_ + ".m", Tensor{Shape{filters_, patch, patch}});
  rng.fill_normal(m_.value, 0.0f, 1.0f / static_cast<float>(patch));
  m_.group = "quadratic_q";
  if (include_linear_) {
    w_ = nn::Parameter(name_ + ".w", Tensor{Shape{filters_, patch}});
    b_ = nn::Parameter(name_ + ".b", Tensor{Shape{filters_}});
    nn::kaiming_normal(w_.value, patch, rng);
    b_.decay = false;
  }
}

Shape GeneralQuadConv2d::output_shape(const Shape& input_shape) const {
  QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input_shape[1], geometry_.in_channels,
                name_ << ": channels");
  return Shape{input_shape[0], filters_,
               geometry_.out_extent(input_shape[2]),
               geometry_.out_extent(input_shape[3])};
}

Tensor GeneralQuadConv2d::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 4, name_ << ": expected [N,C,H,W]");
  QDNN_CHECK_EQ(input.dim(1), geometry_.in_channels, name_ << ": channels");
  cached_input_ = input;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;

  Tensor out{Shape{n, filters_, oh, ow}};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> mcols(static_cast<std::size_t>(patch * n_cols));
  for (index_t s = 0; s < n; ++s) {
    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    float* out_s = out.data() + s * filters_ * n_cols;
    for (index_t f = 0; f < filters_; ++f) {
      const float* m_f = m_.value.data() + f * patch * patch;
      // mcols = M · cols, then y_j = col_jᵀ (M col_j).
      linalg::gemm(false, false, patch, n_cols, patch, 1.0f, m_f, patch,
                   cols.data(), n_cols, 0.0f, mcols.data(), n_cols);
      float* o = out_s + f * n_cols;
      for (index_t j = 0; j < n_cols; ++j) {
        float acc = 0.0f;
        for (index_t p = 0; p < patch; ++p)
          acc += cols[static_cast<std::size_t>(p * n_cols + j)] *
                 mcols[static_cast<std::size_t>(p * n_cols + j)];
        o[j] = acc;
      }
      if (include_linear_) {
        const float* w_f = w_.value.data() + f * patch;
        const float bias = b_.value[f];
        for (index_t j = 0; j < n_cols; ++j) {
          float acc = bias;
          for (index_t p = 0; p < patch; ++p)
            acc += w_f[p] * cols[static_cast<std::size_t>(p * n_cols + j)];
          o[j] += acc;
        }
      }
    }
  }
  return out;
}

Tensor GeneralQuadConv2d::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_input_.empty(), name_ << ": backward before forward");
  const Tensor& input = cached_input_;
  const index_t n = input.dim(0), h = input.dim(2), w = input.dim(3);
  const index_t oh = geometry_.out_extent(h), ow = geometry_.out_extent(w);
  const index_t patch = geometry_.patch_size();
  const index_t n_cols = oh * ow;

  Tensor grad_input{input.shape()};
  std::vector<float> cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> msym_col(static_cast<std::size_t>(patch));
  std::vector<float> grad_cols(static_cast<std::size_t>(patch * n_cols));
  std::vector<float> col_j(static_cast<std::size_t>(patch));

  for (index_t s = 0; s < n; ++s) {
    nn::im2col(input.data() + s * geometry_.in_channels * h * w, h, w,
               geometry_, cols.data());
    std::fill(grad_cols.begin(), grad_cols.end(), 0.0f);
    const float* g_s = grad_output.data() + s * filters_ * n_cols;
    for (index_t f = 0; f < filters_; ++f) {
      const float* m_f = m_.value.data() + f * patch * patch;
      float* gm_f = m_.grad.data() + f * patch * patch;
      const float* g = g_s + f * n_cols;
      for (index_t j = 0; j < n_cols; ++j) {
        const float gy = g[j];
        if (gy == 0.0f) continue;
        for (index_t p = 0; p < patch; ++p)
          col_j[static_cast<std::size_t>(p)] =
              cols[static_cast<std::size_t>(p * n_cols + j)];
        // dM += g · x xᵀ
        for (index_t p = 0; p < patch; ++p) {
          const float gxp = gy * col_j[static_cast<std::size_t>(p)];
          if (gxp != 0.0f)
            linalg::axpy(patch, gxp, col_j.data(), gm_f + p * patch);
        }
        // d(col) += g (M + Mᵀ) x
        linalg::gemv(false, patch, patch, 1.0f, m_f, patch, col_j.data(),
                     0.0f, msym_col.data());
        linalg::gemv(true, patch, patch, 1.0f, m_f, patch, col_j.data(),
                     1.0f, msym_col.data());
        for (index_t p = 0; p < patch; ++p)
          grad_cols[static_cast<std::size_t>(p * n_cols + j)] +=
              gy * msym_col[static_cast<std::size_t>(p)];
        if (include_linear_) {
          linalg::axpy(patch, gy, col_j.data(), w_.grad.data() + f * patch);
          const float* w_f = w_.value.data() + f * patch;
          for (index_t p = 0; p < patch; ++p)
            grad_cols[static_cast<std::size_t>(p * n_cols + j)] +=
                gy * w_f[p];
          b_.grad[f] += gy;
        }
      }
    }
    nn::col2im(grad_cols.data(), h, w, geometry_,
               grad_input.data() + s * geometry_.in_channels * h * w);
  }
  return grad_input;
}

std::vector<nn::Parameter*> GeneralQuadConv2d::parameters() {
  if (include_linear_) return {&m_, &w_, &b_};
  return {&m_};
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

index_t proposed_filters(const NeuronSpec& spec, index_t target_channels) {
  // Nearest rounding keeps the quadratic network's feature-map widths (and
  // with them its parameter count) comparable to the linear baseline's —
  // the sizing the paper's Fig. 4/5 deltas rest on (Sec. III-C: "fewer
  // neurons are required to obtain the original sizes of feature maps").
  const index_t per = spec.rank + 1;
  return std::max<index_t>(1, (target_channels + per / 2) / per);
}

index_t conv_out_channels(const NeuronSpec& spec, index_t target_channels) {
  if (spec.kind != NeuronKind::kProposed) return target_channels;
  return proposed_filters(spec, target_channels) * (spec.rank + 1);
}

nn::ModulePtr make_conv_neuron(const NeuronSpec& spec, index_t in_channels,
                               index_t target_channels, index_t kernel,
                               index_t stride, index_t padding, Rng& rng,
                               std::string name) {
  switch (spec.kind) {
    case NeuronKind::kLinear:
      return std::make_unique<nn::Conv2d>(in_channels, target_channels,
                                          kernel, stride, padding, rng,
                                          /*bias=*/false, std::move(name));
    case NeuronKind::kGeneral:
      return std::make_unique<GeneralQuadConv2d>(
          in_channels, target_channels, kernel, stride, padding,
          /*include_linear=*/true, rng, std::move(name));
    case NeuronKind::kPure:
      return std::make_unique<GeneralQuadConv2d>(
          in_channels, target_channels, kernel, stride, padding,
          /*include_linear=*/false, rng, std::move(name));
    case NeuronKind::kLowRank:
      return std::make_unique<LowRankQuadConv2d>(
          in_channels, target_channels, kernel, stride, padding, spec.rank,
          rng, std::move(name));
    case NeuronKind::kQuad1:
    case NeuronKind::kQuad2:
    case NeuronKind::kBuKarpatne:
      return std::make_unique<FactoredQuadConv2d>(
          in_channels, target_channels, kernel, stride, padding, spec.kind,
          rng, std::move(name));
    case NeuronKind::kKervolution:
      return std::make_unique<KervolutionConv2d>(
          in_channels, target_channels, kernel, stride, padding,
          spec.kerv_degree, spec.kerv_c, rng, std::move(name));
    case NeuronKind::kProposed: {
      const index_t filters = proposed_filters(spec, target_channels);
      return std::make_unique<ProposedQuadConv2d>(
          in_channels, filters, kernel, stride, padding, spec.rank, rng,
          spec.lambda_lr_scale, std::move(name));
    }
    case NeuronKind::kProposedSumOnly:
      // One output per neuron: a filter per requested channel.
      return std::make_unique<ProposedQuadConv2d>(
          in_channels, target_channels, kernel, stride, padding, spec.rank,
          rng, spec.lambda_lr_scale, std::move(name),
          /*emit_features=*/false);
  }
  QDNN_CHECK(false, "make_conv_neuron: unknown kind");
  return nullptr;
}

}  // namespace qdnn::quadratic
