// Energy model: arithmetic, precision ordering, and the invariance the
// bench relies on — relative savings between two networks are independent
// of the per-op constants when both scale the same counts.
#include "analysis/energy_model.h"

#include <gtest/gtest.h>

#include "models/resnet.h"

namespace qdnn::analysis {
namespace {

TEST(EnergyModel, ArithmeticMatchesHandComputation) {
  EnergyParams p;
  p.fp32_mac_pj = 4.0;
  p.sram_pj_per_byte = 0.5;
  p.dram_pj_per_byte = 100.0;
  const EnergyEstimate e =
      estimate_inference(/*macs=*/1000, /*parameters=*/200,
                         Precision::kFp32, p);
  EXPECT_DOUBLE_EQ(e.compute_pj, 4000.0);
  EXPECT_DOUBLE_EQ(e.weight_sram_pj, 200 * 4 * 0.5);
  EXPECT_DOUBLE_EQ(e.weight_dram_pj, 200 * 4 * 100.0);
  EXPECT_DOUBLE_EQ(e.on_chip_total_pj(), 4000.0 + 400.0);
  EXPECT_DOUBLE_EQ(e.off_chip_total_pj(), 4000.0 + 80000.0);
}

TEST(EnergyModel, Int8IsCheaperEverywhere) {
  const EnergyEstimate f32 =
      estimate_inference(1'000'000, 100'000, Precision::kFp32);
  const EnergyEstimate i8 =
      estimate_inference(1'000'000, 100'000, Precision::kInt8);
  EXPECT_LT(i8.compute_pj, f32.compute_pj);
  EXPECT_LT(i8.weight_sram_pj, f32.weight_sram_pj);
  EXPECT_LT(i8.weight_dram_pj, f32.weight_dram_pj);
  // Defaults: compute 4.6/0.3 ≈ 15.3x, memory exactly 4x (byte width).
  EXPECT_NEAR(f32.compute_pj / i8.compute_pj, 4.6 / 0.3, 1e-9);
  EXPECT_NEAR(f32.weight_dram_pj / i8.weight_dram_pj, 4.0, 1e-9);
}

TEST(EnergyModel, RelativeSavingsMatchParameterSavings) {
  // For two fp32 networks, the DRAM-weight term ratio equals the
  // parameter ratio — the paper's storage argument carries to energy.
  const EnergyEstimate a = estimate_inference(0, 460'000, Precision::kFp32);
  const EnergyEstimate b = estimate_inference(0, 270'000, Precision::kFp32);
  EXPECT_NEAR(b.weight_dram_pj / a.weight_dram_pj, 270.0 / 460.0, 1e-9);
}

TEST(EnergyModel, ResNetCountsFeedTheModel) {
  // End-to-end: the library's exact counts produce a finite, positive
  // estimate, and the proposed network's on-chip energy sits below the
  // linear baseline's at equal depth (it has fewer MACs and parameters).
  models::ResNetConfig config;
  config.depth = 20;
  config.num_classes = 10;
  config.image_size = 16;
  config.base_width = 10;
  auto linear_net = models::make_cifar_resnet(config);
  config.spec = models::NeuronSpec::proposed(9);
  auto quad_net = models::make_cifar_resnet(config);

  const EnergyEstimate e_lin = estimate_inference(
      linear_net->macs_per_image(), linear_net->num_parameters(),
      Precision::kFp32);
  const EnergyEstimate e_quad = estimate_inference(
      quad_net->macs_per_image(), quad_net->num_parameters(),
      Precision::kFp32);
  EXPECT_GT(e_quad.on_chip_total_pj(), 0.0);
  EXPECT_LT(e_quad.on_chip_total_pj(), 1.05 * e_lin.on_chip_total_pj());
}

TEST(EnergyModel, RejectsNegativeCounts) {
  EXPECT_THROW(estimate_inference(-1, 0, Precision::kFp32),
               std::runtime_error);
}

TEST(EnergyModel, FormatsMicrojoules) {
  EXPECT_EQ(format_microjoules(2'500'000.0, 2), "2.50");
  EXPECT_EQ(format_microjoules(0.0, 1), "0.0");
}

}  // namespace
}  // namespace qdnn::analysis
