#include "analysis/counters.h"

#include <cstdio>

namespace qdnn::analysis {

ParamBreakdown count_parameters(nn::Module& model) {
  ParamBreakdown breakdown;
  for (const nn::Parameter* p : model.parameters()) {
    breakdown.total += p->numel();
    breakdown.by_group[p->group] += p->numel();
  }
  return breakdown;
}

std::string format_millions(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value / 1e6);
  return std::string(buf);
}

}  // namespace qdnn::analysis
