// Inference-only integer implementations of the two neuron families the
// deployment story cares about: the linear baseline and the proposed
// quadratic neuron.
//
// Both are built *from* a trained float layer (post-training
// quantization): weights move to per-channel int8 grids at construction,
// activations are quantized with a grid calibrated offline on sample
// batches (choose_params_percentile).  forward() then runs entirely in
// int8·int8→int32 arithmetic plus one fp32 rescale per output channel.
//
// The proposed neuron quantizes unusually well for a second-order unit:
// its only integer computation is the same x·[w; Qᵏ]ᵀ GEMM a linear layer
// performs — the squaring happens *after* dequantization on the k fp32
// features fᵏ, so no int16/int32 requantization chain is needed and the
// quadratic response inherits the linear part's error bound (times the
// |Λ|·|f| amplification measured in tests/quantize/).
//
// These modules are inference-only: backward() is a checked error.
#pragma once

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"
#include "quantize/int8_ops.h"
#include "quantize/qtensor.h"

namespace qdnn::quantize {

// y = deq(q(x)·Wqᵀ)·s + b, weights per-channel int8.
class QuantizedLinear : public nn::Module {
 public:
  // Calibration: `sample` is a representative activation batch [N, in];
  // its percentile-absmax fixes the input grid for all future batches.
  QuantizedLinear(nn::Linear& trained, const Tensor& sample, int bits = 8,
                  double percentile = 0.999);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override {
    QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, in]");
    return Shape{input_shape[0], out_};
  }
  std::vector<nn::Parameter*> parameters() override { return {}; }
  std::string name() const override { return name_; }

  const QuantParams& input_params() const { return input_params_; }
  index_t weight_storage_bytes() const { return weight_.storage_bytes(); }

 private:
  std::string name_;
  index_t in_ = 0, out_ = 0;
  QTensorPerChannel weight_;  // [out, in] int8, one scale per row
  Tensor bias_;               // [out] fp32 (empty if the source had none)
  QuantParams input_params_;
  // input_scale · weight_scale per channel, folded once at construction
  // (both factors are immutable after the ctor).
  std::vector<float> dequant_scales_;  // [out]
};

// Integer proposed neuron: one fused int8 GEMM for [w; Qᵏ], fp32 epilogue
// y = y₁ + b + Σλᵢfᵢ², output layout identical to ProposedQuadraticDense.
class QuantizedProposedDense : public nn::Module {
 public:
  QuantizedProposedDense(quadratic::ProposedQuadraticDense& trained,
                         const Tensor& sample, int bits = 8,
                         double percentile = 0.999);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override {
    QDNN_CHECK_EQ(input_shape.rank(), 2, name_ << ": expected [N, in]");
    return Shape{input_shape[0], out_features()};
  }
  std::vector<nn::Parameter*> parameters() override { return {}; }
  std::string name() const override { return name_; }

  index_t out_features() const { return units_ * (rank_ + 1); }
  index_t weight_storage_bytes() const {
    return w_.storage_bytes() + q_.storage_bytes() +
           lambda_.numel() * static_cast<index_t>(sizeof(float));
  }

 private:
  std::string name_;
  index_t in_ = 0, units_ = 0, rank_ = 0;
  QTensorPerChannel w_;  // [units, in]
  QTensorPerChannel q_;  // [units*rank, in]
  Tensor lambda_;        // [units, rank] fp32 — k values/unit, negligible
  Tensor bias_;          // [units] fp32
  QuantParams input_params_;
  std::vector<float> w_scales_, q_scales_;  // folded at construction
};

// Integer standard convolution: per-filter int8 weights, calibrated
// activation grid; forward is im2col → int8 codes → gemm_i8_nn → fp32
// rescale.  Zero padding is exact (code 0) on the symmetric grid.
class QuantizedConv2d : public nn::Module {
 public:
  // `sample` is a representative input batch [N, C, H, W].
  QuantizedConv2d(nn::Conv2d& trained, const Tensor& sample, int bits = 8,
                  double percentile = 0.999);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override {
    QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
    return Shape{input_shape[0], out_channels_,
                 geometry_.out_extent(input_shape[2]),
                 geometry_.out_extent(input_shape[3])};
  }
  std::vector<nn::Parameter*> parameters() override { return {}; }
  std::string name() const override { return name_; }

  index_t weight_storage_bytes() const { return weight_.storage_bytes(); }

 private:
  std::string name_;
  nn::ConvGeometry geometry_;
  index_t out_channels_ = 0;
  QTensorPerChannel weight_;  // [out, patch]
  Tensor bias_;               // [out] fp32 (empty if source had none)
  QuantParams input_params_;
  std::vector<float> dequant_scales_;  // [out], folded at construction
};

// Integer proposed quadratic convolution: the same fused [w; Qᵏ] integer
// GEMM as the float layer, fp32 epilogue for y = y₁ + b + Σλᵢfᵢ²; channel
// layout identical to ProposedQuadConv2d (y followed by fᵏ per filter).
class QuantizedProposedConv2d : public nn::Module {
 public:
  QuantizedProposedConv2d(quadratic::ProposedQuadConv2d& trained,
                          const Tensor& sample, int bits = 8,
                          double percentile = 0.999);

  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override {
    QDNN_CHECK_EQ(input_shape.rank(), 4, name_ << ": expected [N,C,H,W]");
    return Shape{input_shape[0], out_channels(),
                 geometry_.out_extent(input_shape[2]),
                 geometry_.out_extent(input_shape[3])};
  }
  std::vector<nn::Parameter*> parameters() override { return {}; }
  std::string name() const override { return name_; }

  index_t out_channels() const {
    return filters_ * (emit_features_ ? rank_ + 1 : 1);
  }
  index_t weight_storage_bytes() const {
    return w_.storage_bytes() + q_.storage_bytes() +
           lambda_.numel() * static_cast<index_t>(sizeof(float));
  }

 private:
  std::string name_;
  nn::ConvGeometry geometry_;
  index_t filters_ = 0, rank_ = 0;
  bool emit_features_ = true;
  QTensorPerChannel w_;  // [filters, patch]
  QTensorPerChannel q_;  // [filters*rank, patch]
  Tensor lambda_;        // [filters, rank] fp32
  Tensor bias_;          // [filters] fp32
  QuantParams input_params_;
  std::vector<float> w_scales_, q_scales_;  // folded at construction
};

}  // namespace qdnn::quantize
