// NeuronSpec: selects one row of the paper's Table I.
//
// Every model in qdnn (ResNet family, Transformer) is parameterized by a
// NeuronSpec so each experiment swaps neuron families without touching
// model code.  References follow the paper's bibliography:
//   [14] Wang et al.   — Kervolution (polynomial kernel, parameter-free)
//   [16] Mantini&Shah  — pure quadratic xᵀMx
//   [17] Zoumpourlis   — general quadratic xᵀMx + wᵀx + b
//   [18] Jiang et al.  — low-rank xᵀQ₁Q₂ᵀx + wᵀx
//   [19] Fan et al.    — (w₁ᵀx)(w₂ᵀx) + w₃ᵀ(x⊙x)   ("Quad1" in Fig 5)
//   [21] Xu et al.     — (w₁ᵀx)(w₂ᵀx) + w₃ᵀx       ("Quad2" in Fig 5)
//   [23] Bu&Karpatne   — (w₁ᵀx)(w₂ᵀx) + w₁ᵀx
//   ours               — {xᵀQᵏΛᵏ(Qᵏ)ᵀx + wᵀx, (Qᵏ)ᵀx}
#pragma once

#include <string>

#include "core/shape.h"

namespace qdnn::quadratic {

enum class NeuronKind {
  kLinear,       // conventional first-order neuron (baseline)
  kGeneral,      // [17]
  kPure,         // [16]
  kBuKarpatne,   // [23]
  kLowRank,      // [18]
  kQuad1,        // [19]
  kQuad2,        // [21]
  kKervolution,  // [14]
  kProposed,     // this paper
  // Ablation: the proposed neuron with the vectorized output disabled —
  // the same symmetric low-rank quadratic form, but fᵏ is consumed
  // internally only (Sec. III-B's design choice removed).  One output per
  // neuron, so per-output cost is the full (k+1)n + k.
  kProposedSumOnly,
};

struct NeuronSpec {
  NeuronKind kind = NeuronKind::kLinear;

  // Rank of decomposition for kLowRank and kProposed (the paper fixes
  // k = 9 in its CNN experiments).
  index_t rank = 9;

  // lr(Λᵏ) / lr(base): the paper trains Λ at 1e-4…1e-6 against base 0.1.
  float lambda_lr_scale = 1e-3f;

  // Kervolution polynomial kernel (x·w + c)^d hyper-parameters [14].
  int kerv_degree = 2;
  float kerv_c = 0.5f;

  std::string kind_name() const;

  // Number of outputs a single neuron of this kind produces (k+1 for the
  // proposed neuron, 1 for every other family).
  index_t outputs_per_neuron() const {
    return kind == NeuronKind::kProposed ? rank + 1 : 1;
  }

  static NeuronSpec linear() { return NeuronSpec{}; }
  static NeuronSpec proposed(index_t k = 9, float lambda_lr = 1e-3f) {
    NeuronSpec s;
    s.kind = NeuronKind::kProposed;
    s.rank = k;
    s.lambda_lr_scale = lambda_lr;
    return s;
  }
  static NeuronSpec of(NeuronKind kind, index_t k = 9) {
    NeuronSpec s;
    s.kind = kind;
    s.rank = k;
    return s;
  }
};

inline std::string NeuronSpec::kind_name() const {
  switch (kind) {
    case NeuronKind::kLinear: return "linear";
    case NeuronKind::kGeneral: return "general[17]";
    case NeuronKind::kPure: return "pure[16]";
    case NeuronKind::kBuKarpatne: return "bu-karpatne[23]";
    case NeuronKind::kLowRank: return "low-rank[18]";
    case NeuronKind::kQuad1: return "quad1[19]";
    case NeuronKind::kQuad2: return "quad2[21]";
    case NeuronKind::kKervolution: return "kervolution[14]";
    case NeuronKind::kProposed: return "proposed";
    case NeuronKind::kProposedSumOnly: return "proposed-sum-only";
  }
  return "unknown";
}

}  // namespace qdnn::quadratic
