#include "nn/layernorm.h"

#include <cmath>

namespace qdnn::nn {

LayerNorm::LayerNorm(index_t dim, float eps, std::string name)
    : dim_(dim),
      eps_(eps),
      name_(std::move(name)),
      gamma_(name_ + ".gamma", Tensor{Shape{dim}, 1.0f}),
      beta_(name_ + ".beta", Tensor{Shape{dim}}) {
  QDNN_CHECK(dim > 0, "LayerNorm: dim must be positive");
  gamma_.decay = false;
  beta_.decay = false;
}

namespace {

// Row-normalization kernel shared by forward() and forward_into() — one
// definition so training and serving cannot drift.  xhat/invstd_out are
// optional caches (null on the inference path).
void layernorm_rows(const float* in, index_t n, index_t dim, float eps,
                    const float* gamma, const float* beta, float* out,
                    float* xhat, float* invstd_out) {
  for (index_t i = 0; i < n; ++i) {
    const float* x = in + i * dim;
    double mean = 0.0;
    for (index_t j = 0; j < dim; ++j) mean += x[j];
    mean /= dim;
    double var = 0.0;
    for (index_t j = 0; j < dim; ++j) {
      const double d = x[j] - mean;
      var += d * d;
    }
    var /= dim;
    const float invstd = 1.0f / std::sqrt(static_cast<float>(var) + eps);
    if (invstd_out) invstd_out[i] = invstd;
    float* o = out + i * dim;
    const float fmean = static_cast<float>(mean);
    for (index_t j = 0; j < dim; ++j) {
      const float xh = (x[j] - fmean) * invstd;
      if (xhat) xhat[i * dim + j] = xh;
      o[j] = gamma[j] * xh + beta[j];
    }
  }
}

}  // namespace

Tensor LayerNorm::forward(const Tensor& input) {
  QDNN_CHECK_EQ(input.rank(), 2, name_ << ": expected [N, D]");
  QDNN_CHECK_EQ(input.dim(1), dim_, name_ << ": dim");
  const index_t n = input.dim(0);
  Tensor out{input.shape()};
  cached_xhat_ = Tensor{input.shape()};
  cached_invstd_ = Tensor{Shape{n}};
  layernorm_rows(input.data(), n, dim_, eps_, gamma_.value.data(),
                 beta_.value.data(), out.data(), cached_xhat_.data(),
                 cached_invstd_.data());
  return out;
}

void LayerNorm::forward_into(const ConstTensorView& input, const TensorView& output,
                             Workspace&) {
  // Accepts [N, D] or [N, T, D] (the Transformer stage-pipeline layout) —
  // normalization is over the last dim either way.
  const index_t rank = input.rank();
  QDNN_CHECK(rank == 2 || rank == 3,
             name_ << ": expected [N, D] or [N, T, D]");
  QDNN_CHECK_EQ(input.dim(rank - 1), dim_, name_ << ": dim");
  QDNN_CHECK(input.shape() == output.shape(),
             name_ << ": forward_into shape mismatch " << input.shape()
                   << " vs " << output.shape());
  layernorm_rows(input.data(), input.numel() / dim_, dim_, eps_,
                 gamma_.value.data(), beta_.value.data(), output.data(),
                 nullptr, nullptr);
}

Tensor LayerNorm::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_xhat_.empty(), name_ << ": backward before forward");
  const index_t n = grad_output.dim(0);
  Tensor grad_input{grad_output.shape()};
  for (index_t i = 0; i < n; ++i) {
    const float* g = grad_output.data() + i * dim_;
    const float* xh = cached_xhat_.data() + i * dim_;
    float* gi = grad_input.data() + i * dim_;
    double sum_g = 0.0, sum_gx = 0.0;
    for (index_t j = 0; j < dim_; ++j) {
      const double gg = static_cast<double>(g[j]) * gamma_.value[j];
      sum_g += gg;
      sum_gx += gg * xh[j];
      gamma_.grad[j] += g[j] * xh[j];
      beta_.grad[j] += g[j];
    }
    const float mean_g = static_cast<float>(sum_g / dim_);
    const float mean_gx = static_cast<float>(sum_gx / dim_);
    const float invstd = cached_invstd_[i];
    for (index_t j = 0; j < dim_; ++j) {
      const float gg = g[j] * gamma_.value[j];
      gi[j] = invstd * (gg - mean_g - xh[j] * mean_gx);
    }
  }
  return grad_input;
}

std::vector<Parameter*> LayerNorm::parameters() { return {&gamma_, &beta_}; }

}  // namespace qdnn::nn
