#include "data/tokenizer.h"

#include <cctype>

namespace qdnn::data {

std::string lowercase(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

namespace {

bool is_terminal_punct(char c) {
  return c == '.' || c == ',' || c == '!' || c == '?' || c == ';' ||
         c == ':';
}

bool is_symbol(char c) {
  return !std::isalnum(static_cast<unsigned char>(c)) &&
         !std::isspace(static_cast<unsigned char>(c));
}

}  // namespace

std::vector<std::string> tokenize(const std::string& text,
                                  TokenizerKind kind, bool cased) {
  const std::string input = cased ? text : lowercase(text);
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (char c : input) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
      continue;
    }
    const bool split_here = (kind == TokenizerKind::kInternational)
                                ? is_symbol(c)
                                : is_terminal_punct(c);
    if (split_here) {
      flush();
      tokens.push_back(std::string(1, c));
    } else {
      current.push_back(c);
    }
  }
  flush();
  return tokens;
}

}  // namespace qdnn::data
