#include "models/transformer/feedforward.h"

namespace qdnn::models {

FeedForward::FeedForward(index_t d_model, index_t d_ff, Rng& rng,
                         std::string name)
    : name_(std::move(name)),
      fc1_(d_model, d_ff, rng, true, name_ + ".fc1"),
      fc2_(d_ff, d_model, rng, true, name_ + ".fc2") {}

Tensor FeedForward::forward(const Tensor& input) {
  return fc2_.forward(relu_.forward(fc1_.forward(input)));
}

Tensor FeedForward::backward(const Tensor& grad_output) {
  return fc1_.backward(relu_.backward(fc2_.backward(grad_output)));
}

std::vector<nn::Parameter*> FeedForward::parameters() {
  std::vector<nn::Parameter*> params = fc1_.parameters();
  for (nn::Parameter* p : fc2_.parameters()) params.push_back(p);
  return params;
}

}  // namespace qdnn::models
