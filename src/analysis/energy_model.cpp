#include "analysis/energy_model.h"

#include <cstdio>

namespace qdnn::analysis {

EnergyEstimate estimate_inference(index_t macs, index_t parameters,
                                  Precision precision,
                                  const EnergyParams& params) {
  QDNN_CHECK(macs >= 0 && parameters >= 0, "counts must be non-negative");
  EnergyEstimate e;
  const double weight_bytes =
      static_cast<double>(parameters) * params.bytes_per_weight(precision);
  e.compute_pj = static_cast<double>(macs) * params.mac_pj(precision);
  e.weight_sram_pj = weight_bytes * params.sram_pj_per_byte;
  e.weight_dram_pj = weight_bytes * params.dram_pj_per_byte;
  return e;
}

std::string format_microjoules(double pj, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, pj * 1e-6);
  return buf;
}

}  // namespace qdnn::analysis
