#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace qdnn::linalg {

Tensor symmetrize(const Tensor& m) {
  QDNN_CHECK_EQ(m.rank(), 2, "symmetrize: rank-2 required");
  QDNN_CHECK_EQ(m.dim(0), m.dim(1), "symmetrize: square required");
  const index_t n = m.dim(0);
  Tensor out{Shape{n, n}};
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j)
      out.at(i, j) = 0.5f * (m.at(i, j) + m.at(j, i));
  return out;
}

double frobenius_norm(const Tensor& m) {
  double acc = 0.0;
  for (index_t i = 0; i < m.numel(); ++i)
    acc += static_cast<double>(m[i]) * m[i];
  return std::sqrt(acc);
}

double quadratic_form(const Tensor& m, const Tensor& x) {
  QDNN_CHECK_EQ(m.rank(), 2, "quadratic_form: matrix rank");
  const index_t n = m.dim(0);
  QDNN_CHECK_EQ(m.dim(1), n, "quadratic_form: square matrix");
  QDNN_CHECK_EQ(x.numel(), n, "quadratic_form: vector length");
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) {
    double row = 0.0;
    for (index_t j = 0; j < n; ++j)
      row += static_cast<double>(m.at(i, j)) * x[j];
    acc += static_cast<double>(x[i]) * row;
  }
  return acc;
}

EigResult eigh(const Tensor& m, double symmetry_tol) {
  QDNN_CHECK_EQ(m.rank(), 2, "eigh: rank-2 required");
  const index_t n = m.dim(0);
  QDNN_CHECK_EQ(m.dim(1), n, "eigh: square required");

  // Work in double for numerical head-room; the library's tensors are
  // float but Jacobi rotations accumulate.
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (index_t i = 0; i < n; ++i)
    for (index_t j = 0; j < n; ++j) {
      const double mij = m.at(i, j), mji = m.at(j, i);
      QDNN_CHECK(std::fabs(mij - mji) <= symmetry_tol,
                 "eigh: matrix not symmetric at (" << i << "," << j << ")");
      a[static_cast<std::size_t>(i * n + j)] = 0.5 * (mij + mji);
    }

  std::vector<double> v(static_cast<std::size_t>(n) * n, 0.0);
  for (index_t i = 0; i < n; ++i) v[static_cast<std::size_t>(i * n + i)] = 1.0;

  auto off_diag_norm = [&] {
    double s = 0.0;
    for (index_t i = 0; i < n; ++i)
      for (index_t j = i + 1; j < n; ++j) {
        const double x = a[static_cast<std::size_t>(i * n + j)];
        s += x * x;
      }
    return std::sqrt(2.0 * s);
  };

  const double eps = 1e-12 * std::max(1.0, frobenius_norm(m));
  constexpr int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps && off_diag_norm() > eps; ++sweep) {
    for (index_t p = 0; p < n - 1; ++p) {
      for (index_t q = p + 1; q < n; ++q) {
        const double apq = a[static_cast<std::size_t>(p * n + q)];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[static_cast<std::size_t>(p * n + p)];
        const double aqq = a[static_cast<std::size_t>(q * n + q)];
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable computation of tan of the rotation angle.
        const double t =
            (theta >= 0 ? 1.0 : -1.0) /
            (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Rotate rows/cols p and q of A.
        for (index_t i = 0; i < n; ++i) {
          const double aip = a[static_cast<std::size_t>(i * n + p)];
          const double aiq = a[static_cast<std::size_t>(i * n + q)];
          a[static_cast<std::size_t>(i * n + p)] = c * aip - s * aiq;
          a[static_cast<std::size_t>(i * n + q)] = s * aip + c * aiq;
        }
        for (index_t j = 0; j < n; ++j) {
          const double apj = a[static_cast<std::size_t>(p * n + j)];
          const double aqj = a[static_cast<std::size_t>(q * n + j)];
          a[static_cast<std::size_t>(p * n + j)] = c * apj - s * aqj;
          a[static_cast<std::size_t>(q * n + j)] = s * apj + c * aqj;
        }
        // Accumulate eigenvectors.
        for (index_t i = 0; i < n; ++i) {
          const double vip = v[static_cast<std::size_t>(i * n + p)];
          const double viq = v[static_cast<std::size_t>(i * n + q)];
          v[static_cast<std::size_t>(i * n + p)] = c * vip - s * viq;
          v[static_cast<std::size_t>(i * n + q)] = s * vip + c * viq;
        }
      }
    }
  }

  // Sort by |λ| descending, as in the paper's top-k selection.
  std::vector<index_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), index_t{0});
  std::stable_sort(order.begin(), order.end(), [&](index_t x, index_t y) {
    return std::fabs(a[static_cast<std::size_t>(x * n + x)]) >
           std::fabs(a[static_cast<std::size_t>(y * n + y)]);
  });

  EigResult result{Tensor{Shape{n}}, Tensor{Shape{n, n}}};
  for (index_t k = 0; k < n; ++k) {
    const index_t src = order[static_cast<std::size_t>(k)];
    result.eigenvalues[k] =
        static_cast<float>(a[static_cast<std::size_t>(src * n + src)]);
    for (index_t i = 0; i < n; ++i)
      result.eigenvectors.at(i, k) =
          static_cast<float>(v[static_cast<std::size_t>(i * n + src)]);
  }
  return result;
}

Tensor reconstruct(const Tensor& q, const Tensor& lambda) {
  QDNN_CHECK_EQ(q.rank(), 2, "reconstruct: q rank");
  QDNN_CHECK_EQ(lambda.rank(), 1, "reconstruct: lambda rank");
  const index_t n = q.dim(0), k = q.dim(1);
  QDNN_CHECK_EQ(lambda.numel(), k, "reconstruct: lambda length");
  Tensor out{Shape{n, n}};
  for (index_t c = 0; c < k; ++c) {
    const float l = lambda[c];
    for (index_t i = 0; i < n; ++i) {
      const float qic = q.at(i, c) * l;
      if (qic == 0.0f) continue;
      for (index_t j = 0; j < n; ++j) out.at(i, j) += qic * q.at(j, c);
    }
  }
  return out;
}

}  // namespace qdnn::linalg
