#include "nn/im2col.h"

namespace qdnn::nn {

void im2col(const float* image, index_t height, index_t width,
            const ConvGeometry& g, float* cols) {
  const index_t oh = g.out_extent(height);
  const index_t ow = g.out_extent(width);
  const index_t n_cols = oh * ow;
  index_t row = 0;
  for (index_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * height * width;
    for (index_t ky = 0; ky < g.kernel; ++ky) {
      for (index_t kx = 0; kx < g.kernel; ++kx, ++row) {
        float* out_row = cols + row * n_cols;
        index_t col = 0;
        for (index_t oy = 0; oy < oh; ++oy) {
          const index_t iy = oy * g.stride + ky - g.padding;
          if (iy < 0 || iy >= height) {
            for (index_t ox = 0; ox < ow; ++ox) out_row[col++] = 0.0f;
            continue;
          }
          const float* img_row = chan + iy * width;
          for (index_t ox = 0; ox < ow; ++ox) {
            const index_t ix = ox * g.stride + kx - g.padding;
            out_row[col++] =
                (ix >= 0 && ix < width) ? img_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* cols, index_t height, index_t width,
            const ConvGeometry& g, float* image_grad) {
  const index_t oh = g.out_extent(height);
  const index_t ow = g.out_extent(width);
  const index_t n_cols = oh * ow;
  index_t row = 0;
  for (index_t c = 0; c < g.in_channels; ++c) {
    float* chan = image_grad + c * height * width;
    for (index_t ky = 0; ky < g.kernel; ++ky) {
      for (index_t kx = 0; kx < g.kernel; ++kx, ++row) {
        const float* in_row = cols + row * n_cols;
        index_t col = 0;
        for (index_t oy = 0; oy < oh; ++oy) {
          const index_t iy = oy * g.stride + ky - g.padding;
          if (iy < 0 || iy >= height) {
            col += ow;
            continue;
          }
          float* img_row = chan + iy * width;
          for (index_t ox = 0; ox < ow; ++ox, ++col) {
            const index_t ix = ox * g.stride + kx - g.padding;
            if (ix >= 0 && ix < width) img_row[ix] += in_row[col];
          }
        }
      }
    }
  }
}

}  // namespace qdnn::nn
