// Model-level post-training quantization.
//
// Two services on top of quantize/qtensor:
//
//  1. quantize_parameters — fake-quantizes every trainable weight of a
//     Module in place (per-channel grids for matrices, per-tensor for
//     vectors), so the unmodified float forward path evaluates the
//     quantized network.  Λᵏ may use a different bit width than the rest:
//     the eigenvalues of the proposed neuron span several orders of
//     magnitude across layers (Fig. 7) and gate a *squared* feature, so
//     their precision is a deployment knob of its own
//     (bench/ablation_quantization sweeps it).
//
//  2. storage_report — deployed-bytes accounting per parameter group
//     ("linear" / "quadratic_q" / "quadratic_lambda"), extending the
//     paper's fp32 #Parameter storage analysis (Eq. 9) to int-N bytes.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"
#include "quantize/qtensor.h"

namespace qdnn::quantize {

struct QuantizeConfig {
  int weight_bits = 8;
  // Bit width for parameters in group "quadratic_lambda"; <= 0 means "use
  // weight_bits".
  int lambda_bits = 0;
  // Per-output-channel scales for rank>=2 parameters (recommended); rank-1
  // parameters (biases, Λ rows flattened per unit) always use per-tensor.
  bool per_channel = true;
  // Leave biases and normalization affine parameters (decay == false) in
  // fp32 — they are O(channels), negligible storage, and quantizing them
  // shifts BatchNorm statistics.
  bool keep_bias_float = true;

  int bits_for_group(const std::string& group) const {
    if (group == "quadratic_lambda" && lambda_bits > 0) return lambda_bits;
    return weight_bits;
  }
};

// Per-parameter record of what quantize_parameters did.
struct ParamQuantRecord {
  std::string name;
  std::string group;
  index_t numel = 0;
  int bits = 0;           // 32 when left in float
  bool quantized = false;
  QuantError error;       // zero when !quantized
};

// Fake-quantizes all parameters of `m` in place per `cfg`.  Returns one
// record per parameter (including the ones intentionally left fp32).
std::vector<ParamQuantRecord> quantize_parameters(nn::Module& m,
                                                  const QuantizeConfig& cfg);

// Deployed-storage accounting for a module under a quantization config.
struct GroupStorage {
  std::string group;
  index_t numel = 0;
  index_t fp32_bytes = 0;
  index_t quant_bytes = 0;  // int payload + scales (fp32 rows for vectors)
};

struct StorageReport {
  std::vector<GroupStorage> groups;
  index_t total_numel = 0;
  index_t total_fp32_bytes = 0;
  index_t total_quant_bytes = 0;

  double compression() const {
    return total_quant_bytes > 0
               ? static_cast<double>(total_fp32_bytes) /
                     static_cast<double>(total_quant_bytes)
               : 0.0;
  }
};

// Computes the report without modifying the module.
StorageReport storage_report(nn::Module& m, const QuantizeConfig& cfg);

}  // namespace qdnn::quantize
