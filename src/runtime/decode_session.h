// DecodeSession: the autoregressive serving facade over a Transformer
// decoder — the decode-side sibling of InferenceSession, following the
// same build → bind/freeze → run lifecycle:
//
//   * bind (construction): the decoder stack is flattened into per-step
//     stages (DecoderLayer::flatten_into — attention steps, residual-add,
//     LayerNorm and FFN stages over [N, D] boundaries) plus the output
//     projection; per-layer KV cache rings, boundary buffers, the logits
//     buffer and the argmax scratch are preallocated for
//     (max_batch, max_steps); unless config.freeze is off, the decode-side
//     modules (target embedding, decoder layers, output projection) are
//     frozen — constant GEMM operands prepacked, training caches dropped;
//     a warm-up step at the deepest ring position discovers the workspace
//     watermark, which is then consolidated into one contiguous block.
//   * prime(src): runs the masked native encoder
//     (TransformerEncoder::encode_into — ragged src_lengths mask key
//     tails to exact-zero softmax weights, bit-identical to the training
//     path), projects each layer's cross-attention K/V once into the
//     encoder-side caches, and rewinds the step counters.  The per-request
//     setup; zero-alloc once the solo staging slot is warm.
//   * prime_row(row, src)/reset_row(row): the per-row face of the same
//     lifecycle, for continuous batching (serve::BatchScheduler).  Every
//     row carries its own step counter, source length and cache slices,
//     so one request can be admitted into a free row — encoded and
//     cross-projected into just that row — while the other rows keep
//     decoding mid-flight at different ring positions.  The per-row
//     attention masks make each row bit-identical to a solo session
//     serving only that request.
//   * prime_compute(src, staging)/commit_row(row, staging): prime_row
//     split at the prefill/decode boundary.  prime_compute is the
//     expensive half — the masked native encoder pass plus every layer's
//     cross-K/V projection, all written into / scratched from the
//     caller-owned PrefillStaging — and touches NO session or model
//     mutable state (stateless kernels reading frozen weights), so
//     serve::PrefillPool workers run it fully concurrently with each
//     other and with step()/commit_row on the serving thread: no mutex,
//     no serialization, and zero heap allocations once the staging slot
//     is warm (init_staging warms it).  commit_row is the cheap half:
//     copy the staged K/V into the row's cache slices and rewind the row
//     — O(K/V copy), zero heap allocations, serving-thread only.
//     prime_row(row, src) ≡ prime_compute + commit_row (it is implemented
//     that way), so sync and async admission are bit-identical by
//     construction.
//   * step()/generate(): every step embeds ONE new token per row
//     (position = step, so causal masking is implicit in the self-attention
//     cache length), runs all decoder stages, projects logits and takes
//     the argmax.  Steady-state step() performs ZERO heap allocations
//     (asserted with a counting global allocator in
//     tests/runtime/session_test.cpp) and O(T) attention work per token —
//     versus the O(T²) full-prefix re-decode of
//     Transformer::greedy_decode_reference, which remains the bit-exact
//     regression oracle (tests/models/decode_session_test.cpp).
//
// KV cache memory (PR 10: paged).  All KV storage lives in one
// preallocated runtime::KvPagePool of uniform pages holding `page_tokens`
// token positions across every layer's K and V
// (page_floats = layers × 2 × page_tokens × proj_dim); a row maps pages
// through per-row page tables (self: ceil(max_steps / page_tokens)
// entries, cross: ceil(max_src / page_tokens)), acquiring self pages as
// its decode deepens and cross pages at commit, releasing everything at
// reset_row.  Unmapped entries point at the pool's sentinel page, so
// parked rows and the warm-up pass read/write defined memory with no
// kernel branching.  pool_pages defaults to the dense worst case
// (max_batch rows fully deep); smaller pools oversubscribe — see
// free_pages()/ensure_row_step_capacity and the scheduler's preemption
// path.  On top of the pool sits a bounded content-hashed PREFIX CACHE:
// commit_row publishes each committed source's cross-K/V pages under a
// hash of its tokens, and a later admission with the same source takes
// refcounts on those SAME pages and skips the whole prefill
// (try_commit_row_from_cache / prefix_lookup_into) — bit-identical to a
// cold prime, because the pages hold the cold prime's bits.  Cached
// pages whose only holder is the cache are reclaimed (LRU) whenever the
// pool runs dry, so the cache can never starve admission.
//
// The session binds the model's decoder step adapters; one DecodeSession
// may bind a given Transformer at a time (the destructor unbinds).  With
// config.freeze the borrowed model stays frozen after the session is
// destroyed — call Transformer::unfreeze() (or freeze() again) after any
// weight update, as with every frozen module.
//
// Thread-safety: prime/step/generate are synchronous and not reentrant —
// drive one session per serving thread or serialize callers.
// prime_compute is the exception: it is safe from any number of threads
// concurrently (each caller brings its own PrefillStaging), because the
// whole prefill runs through stateless native kernels that only READ the
// model.  Do not mutate the model (training, freeze/unfreeze, weight
// updates) while prefill workers are live.
#pragma once

#include <cstdint>
#include <vector>

#include "core/workspace.h"
#include "models/transformer/transformer.h"
#include "obs/profile.h"
#include "runtime/kv_pages.h"

namespace qdnn::runtime {

// Staging area for one prefill: every decoder layer's cross-attention K/V
// for one request, computed off the serving thread by prime_compute and
// copied into a batch row by commit_row.  Sized by
// DecodeSession::init_staging (layers × max_src × proj_dim floats per
// tensor, layer-major); the workspace is the worker's private arena for
// the WHOLE prefill — encoder activations and projection scratch — so a
// worker never touches the session's own arena or any other worker's.
// Ownership contract: one thread drives a slot at a time (PrefillPool
// checks slots out exclusively); the slot is reusable — each
// prime_compute overwrites the previous request — and after init_staging
// warms it, a prefill at any geometry up to max_src is zero-alloc.
struct PrefillStaging {
  Tensor k, v;     // [layers · max_src · P], layer-major slices
  index_t ts = 0;  // source rows projected ([1, max_src])
  index_t len = 0; // valid (non-pad) positions ([1, ts])
  Workspace ws;    // projection scratch, owned by the slot
  // Prefix-reuse state (PR 10).  `tokens` is the source id sequence,
  // captured by prime_compute (the cache key commit_row publishes
  // under) or by prefix_lookup_into (the key it matched).  On a cache
  // hit (from_cache = true, prime_compute skipped) `page_ids` holds the
  // shared cross-K/V pages with one refcount each taken for this slot —
  // ownership passes to commit_row (which maps them into the row) or to
  // release_staged_prefix (the doomed-job path), exactly once.  Both
  // vectors are reserved by init_staging, so the steady-state slot cycle
  // stays zero-alloc.
  std::vector<index_t> tokens;
  std::vector<index_t> page_ids;
  bool from_cache = false;
};

struct DecodeSessionConfig {
  // Largest batch prime() will be asked to serve.
  index_t max_batch = 1;
  // Step capacity of the self-attention KV rings == the most tokens
  // generate() can emit per row.  The implicit bos occupies position 0
  // and step s embeds position s, so max_steps may equal the model's
  // max_len exactly.
  index_t max_steps = 1;
  // Longest source prime() will be asked to serve — sizes the
  // encoder-side K/V caches and the warm-up projection.  0 (default)
  // means the model's max_len; set it when sources are known to be short
  // to shrink the caches and bind-time work proportionally.
  index_t max_src = 0;
  // Freeze the decode-side modules at bind time (prepack constant
  // weights, drop training caches).  Off only for A/B measurement and
  // non-invasive wrappers — results are bit-identical either way.
  bool freeze = true;
  // Run one dummy step at the deepest ring position at construction so
  // the workspace watermark is discovered (and consolidated) before the
  // first real request.  Also gates init_staging's dummy prefill, which
  // warms each staging slot's workspace the same way.
  bool warmup = true;
  // Token positions per KV page (power of two).  One page carries every
  // layer's K and V for this many consecutive positions, so
  // page_floats = layers × 2 × page_tokens × proj_dim.
  index_t page_tokens = 16;
  // Usable pages in the pool.  0 (default) = the dense-equivalent worst
  // case, max_batch × (ceil(max_steps/page_tokens) +
  // ceil(max_src/page_tokens)) — every row fully deep, no
  // oversubscription possible.  Smaller pools oversubscribe: admission
  // should gate on free_pages() and a decode step that finds the pool
  // dry needs the scheduler's preemption path (the session itself
  // errors).  Must cover at least one worst-case row.
  index_t pool_pages = 0;
  // Prefix-cache entries (distinct sources whose cross-K/V pages stay
  // pinned for reuse).  0 disables the cache.
  index_t prefix_cache_entries = 16;
};

class DecodeSession {
 public:
  DecodeSession(models::Transformer& model, DecodeSessionConfig config);
  ~DecodeSession();

  DecodeSession(const DecodeSession&) = delete;
  DecodeSession& operator=(const DecodeSession&) = delete;

  // Encodes src_ids [n, Ts] (n ≤ max_batch, Ts ≤ the configured max_src,
  // which defaults to the model's max_len), projects the encoder-side K/V
  // of every decoder layer, and rewinds every row's step counter.
  // src_lengths[i] ∈ [0, Ts] counts row i's valid positions, 0 (or an
  // empty vector) meaning "all Ts valid" — the same sentinel as
  // prime_row/prime_compute.  Per-request setup; the first call warms the
  // session's solo staging slot, later calls are zero-alloc.
  void prime(const Tensor& src_ids, const std::vector<index_t>& src_lengths);

  // Continuous-batching admission: encodes ONE source ([Ts] or [1, Ts]
  // ids, src_length ∈ [0, Ts] valid positions, 0 = all Ts) into row
  // `row`'s encoder-side caches and rewinds that row's step counter — no
  // other row's caches, counters or in-flight decode are touched.  The
  // first prime_row (re)binds the session to the full max_batch width;
  // batch prime() and prime_row() may be interleaved, but prime() resets
  // every row.  Zero-alloc once the solo staging slot is warm.
  void prime_row(index_t row, const Tensor& src_ids, index_t src_length);

  // Sizes `staging` for this session's geometry (layers × max_src ×
  // proj_dim per tensor) and — unless config.warmup is off — warms its
  // workspace with one dummy prefill at the deepest geometry, so every
  // later prime_compute through the slot is zero-alloc.  The slot is left
  // rewound (committing it before a real prime_compute still errors).
  // Idempotent; allocates only on first use.
  void init_staging(PrefillStaging& staging) const;

  // The lock-free compute half of prime_row: encodes ONE source ([Ts] or
  // [1, Ts] ids, src_length ∈ [0, Ts] valid positions, 0 = all Ts)
  // through the masked native encoder and projects every layer's
  // cross-attention K/V into `staging`.  The whole pass — embed,
  // positional scale, masked attention, FFN, LayerNorm, projections —
  // runs via stateless forward_into kernels from staging.ws, reading
  // frozen weights and writing nothing shared: no session or model state
  // is touched, so any number of prime_compute calls run fully
  // concurrently with each other and with step()/commit_row on the
  // serving thread (race-checked under ThreadSanitizer in CI), and the
  // result is bit-identical to the training-path encoder on the same
  // ragged source.  Zero heap allocations once `staging` is warm.  Do
  // not mutate the model (training, freeze/unfreeze, weight updates)
  // while prefill workers are live.
  void prime_compute(const Tensor& src_ids, index_t src_length,
                     PrefillStaging& staging) const;

  // The commit half: releases the row's previous pages, then either maps
  // the staging's shared prefix pages (from_cache — O(pages) bookkeeping,
  // refcount ownership transfers from the slot to the row) or acquires
  // fresh cross pages, copies the staged K/V into them and publishes them
  // to the prefix cache under the source-token hash.  Rewinds the row's
  // step counter — no other row is touched, and no heap allocation is
  // performed.  Serving-thread only.  Errors (rolling back cleanly) if
  // the pool cannot cover the cross pages even after reclaiming cached
  // prefixes — gate admission on free_pages() to avoid it.
  void commit_row(index_t row, PrefillStaging& staging);

  // Prefix-cache admission, the synchronous face: when the cache holds
  // this exact source (full-token compare — hash collisions can never
  // alias), maps the shared pages into row `row` (refcounted; skipping
  // encoder + projection entirely) and rewinds the row, returning true.
  // False = miss, caller runs prime_row/prime_compute.  Bit-identical to
  // a cold prime: the pages hold the cold prime's bits.  Serving-thread
  // only; zero-alloc.
  bool try_commit_row_from_cache(index_t row, const Tensor& src_ids,
                                 index_t src_length);

  // Prefix-cache admission, the worker face: checks the cache for this
  // source and, on a hit, acquires the shared pages INTO `staging`
  // (page_ids + from_cache, one refcount per page held by the slot) so
  // the worker skips prime_compute and the serving thread's commit_row
  // maps the pages.  Safe from any number of pool workers concurrently
  // with each other and with the serving thread's commit/publish/evict
  // (the cache and pool serialize internally; race-checked under TSan in
  // CI).  Zero-alloc once `staging` is warm.
  bool prefix_lookup_into(const Tensor& src_ids, index_t src_length,
                          PrefillStaging& staging);

  // Releases a staging slot's un-committed prefix pages (a cache hit
  // whose job was cancelled, expired or errored before commit).  No-op
  // when the slot holds none.  Serving-thread only; zero-alloc.
  void release_staged_prefix(PrefillStaging& staging);

  // Ensures row `row` has a self-KV page mapped for its CURRENT step
  // position, acquiring one (reclaiming cached prefixes if needed) when
  // the row is entering a new page-aligned block.  Returns false when the
  // pool is exhausted even after reclaim — the oversubscription signal:
  // the caller (scheduler) preempts a row to free pages and retries.
  // step() performs the same acquisition internally and ERRORS on
  // exhaustion, so oversubscribing callers must invoke this for every
  // live row before each step.  Serving-thread only; zero-alloc.
  bool ensure_row_step_capacity(index_t row);

  // Parks row `row`: rewinds its step counter to ring position 0 and pins
  // it there — a parked row keeps riding the batch gemm (output ignored)
  // with its counter never advancing, so its ring can never exhaust and
  // no per-tick re-reset is needed.  The continuous-batching retire
  // operation; prime/prime_row/commit_row unpark.  Zero-alloc.
  void reset_row(index_t row);

  // One decoder step: embeds `tokens` ([n] ids — bos on the first step,
  // the previous emission after) at position step(), runs every decoder
  // stage and the output projection, and returns the per-row argmax.
  // Steady state: zero heap allocations.  The returned reference is
  // valid until the next step()/prime().
  const std::vector<index_t>& step(const std::vector<index_t>& tokens);

  // Greedy loop: seeds bos, steps until every row emitted eos or
  // max_steps is reached, and returns the emissions per row (bos/eos
  // excluded) — exactly greedy_decode_reference's contract, bit-identical
  // output.  Allocates only the returned vectors.
  std::vector<std::vector<index_t>> generate(index_t bos, index_t eos);

  // Logits [n, tgt_vocab] of the last step; aliases an internal buffer.
  const ConstTensorView& logits() const { return logits_view_; }

  index_t max_batch() const { return config_.max_batch; }
  index_t max_steps() const { return config_.max_steps; }
  // Source capacity of the encoder-side caches (config.max_src, or the
  // model's max_len when unset).
  index_t max_src() const { return max_src_; }
  // Rows bound by the last prime()/prime_row() (0 before the first).
  index_t batch() const { return primed_ ? bound_n_ : 0; }
  // Steps taken by the deepest bound row since its prime/reset — the
  // batch-lockstep step count after a plain prime().
  index_t steps_taken() const;
  // Steps taken by one row since its last prime/prime_row/reset_row.
  index_t row_steps(index_t row) const;
  // True while row `row` is parked (reset_row since its last prime):
  // its ring position is pinned at 0 across ticks.
  bool row_parked(index_t row) const;
  bool frozen() const { return config_.freeze; }
  // True when every module stage has a native (allocation-free)
  // forward_into — all stock projection families qualify.
  bool fully_native() const;
  index_t num_stages() const { return static_cast<index_t>(stages_.size()); }
  // Footprint introspection, in floats.
  index_t kv_cache_floats() const;
  index_t workspace_floats() const { return ws_.capacity(); }

  // --- paged-KV introspection (PR 10) ------------------------------------
  // Token positions per page (config.page_tokens).
  index_t page_tokens() const { return page_tokens_; }
  // Pages currently free in the pool (lock-free; admission gate input).
  index_t free_pages() const { return pool_.free_pages(); }
  // Usable pages in the pool (config.pool_pages, or the dense-equivalent
  // default).
  index_t total_pages() const { return pool_.pages(); }
  // Pages a commit of a ts-position source will acquire when it misses
  // the prefix cache (0 on a hit — the hit maps shared pages).
  index_t cross_pages_for(index_t ts) const {
    return (ts + page_tokens_ - 1) >> page_shift_;
  }
  // Cached-prefix pages whose only holder is the cache — reclaimed on
  // demand by page acquisition, so admission may count them as available.
  index_t reclaimable_pages() const {
    return prefix_cache_.reclaimable_pages(pool_);
  }
  const KvPagePool& pool() const { return pool_; }
  const PrefixCache& prefix_cache() const { return prefix_cache_; }

  // Per-stage wall-time accumulated by run_step while tracing is enabled
  // (obs::trace_enabled()): one entry per pipeline stage, bracketed by an
  // "embed" pseudo-stage in front and "argmax" at the back.  Accumulation
  // is two clock reads per stage per step, entirely skipped when tracing
  // is off (the zero-overhead disabled path).  Buffers are preallocated
  // at bind; the accessor allocates only the returned vector.  Not
  // thread-safe with a concurrent step() — read between ticks.
  std::vector<obs::StageTiming> stage_profile() const;

 private:
  void bind_views(index_t n);
  void unbind_all();
  // Runs the masked native encoder over one source ([ts] ids at `ids`,
  // `len` valid positions) inside `staging.ws` — resetting the slot's
  // workspace first, so the returned [ts, D] view and everything a caller
  // stacks after it (the cross projections) live in one frame.  The only
  // writes are to `staging`; safe from any thread with a private slot.
  ConstTensorView encode_source(const float* ids, index_t ts, index_t len,
                                PrefillStaging& staging) const;
  // The shared bodies behind prime/prime_row/prime_compute/commit_row:
  // _impl performs no (re)binding, so prime() can drive them per row
  // after binding the batch width once.
  void prime_compute_impl(const float* ids, index_t ts, index_t len,
                          PrefillStaging& staging) const;
  void commit_row_impl(index_t row, PrefillStaging& staging);
  // Pool acquire that reclaims LRU prefix-cache entries on exhaustion;
  // -1 only when live rows hold everything.
  index_t acquire_page_();
  // Releases every non-sentinel page mapped by row `row` (both tables)
  // and rewinds the table entries to the sentinel.
  void release_row_pages_(index_t row);
  void run_step(const std::vector<index_t>& tokens);

  models::Transformer* model_;
  DecodeSessionConfig config_;
  index_t d_model_ = 0, proj_dim_ = 0, vocab_ = 0, max_src_ = 0;

  // Step-stage plan: boundary -1 is the embedded token row [N, D];
  // residual-add stages have a null module; the final stage is the output
  // projection onto [N, tgt_vocab].
  std::vector<nn::PipelineStage> stages_;
  std::vector<index_t> stage_width_;  // per-boundary row width

  // Paged KV state (PR 10).  One pool backs both attention kinds; the
  // per-row page tables ([max_batch, pages_per_row], sentinel-filled when
  // unmapped) are what the step adapters' PagedKvViews index through.
  // Layer slices inside a page are static offsets (kv_pages.h), so one
  // table entry per (row, token-block) serves every layer.
  KvPagePool pool_;
  PrefixCache prefix_cache_;
  index_t page_tokens_ = 0, page_shift_ = 0;
  index_t self_ppr_ = 0, cross_ppr_ = 0;  // table entries per row
  std::vector<index_t> self_table_, cross_table_;
  // True during the construction warm-up step: the kernels run against
  // all-sentinel tables (defined zero memory) and no pages are acquired.
  bool warming_ = false;
  // Serving-thread scratch for try_commit_row_from_cache (reserved at
  // bind so the lookup is zero-alloc).
  std::vector<index_t> lookup_tokens_, lookup_pages_;

  Tensor embed_buf_;               // [max_batch · d_model], boundary -1
  std::vector<Tensor> buffers_;    // per-stage boundary buffers
  std::vector<ConstTensorView> in_views_;
  std::vector<ConstTensorView> add_views_;
  std::vector<TensorView> out_views_;
  ConstTensorView logits_view_;

  std::vector<index_t> next_tokens_;  // argmax per row, step() result
  std::vector<index_t> feed_tokens_;  // generate() feedback scratch
  std::vector<char> done_;            // generate() per-row eos flags
  // Per-row session state the step adapters point into: ring positions
  // and valid source lengths, one entry per bound row.  Preallocated at
  // bind (capacity max_batch) so prime_row/reset_row never allocate.
  std::vector<index_t> row_steps_;
  std::vector<index_t> src_lengths_;
  // Parked rows (reset_row since last prime): counter pinned at ring 0,
  // run_step never advances them.  All rows start parked.
  std::vector<char> parked_;

  // Stage profiling accumulators (stage_profile()): slot 0 is the embed
  // pseudo-stage, 1..stages are the pipeline stages, the last slot is the
  // argmax head.  Sized at bind, written by run_step only while tracing
  // is enabled.
  std::vector<long long> stage_ns_;
  std::vector<long long> stage_calls_;

  Workspace ws_;
  // The masked native encoder facade prime/prime_compute run through —
  // stateless (all scratch comes from the caller's staging workspace),
  // so no mutex guards it.  mutable: prime_compute is const and the
  // facade holds no mutable state of its own.
  mutable models::TransformerEncoder encoder_;
  // Lazily-initialized staging for the synchronous prime/prime_row face,
  // so all three admission paths share one code path.
  PrefillStaging solo_staging_;
  index_t bound_n_ = 0;
  bool primed_ = false;
};

}  // namespace qdnn::runtime
