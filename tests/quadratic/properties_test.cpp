// Cross-cutting property tests on the quadratic neuron families — the
// algebraic identities the paper's construction relies on, checked on the
// actual layer implementations (not just the linalg primitives).
#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck_util.h"
#include "linalg/eig.h"
#include "quadratic/convert.h"
#include "quadratic/quad_conv.h"
#include "quadratic/quad_dense.h"

namespace qdnn::quadratic {
namespace {

using qdnn::testing::random_tensor;

// The quadratic part of the proposed neuron is an EVEN function: with the
// linear part zeroed, y(x) == y(−x).
TEST(Properties, ProposedQuadraticPartIsEven) {
  Rng rng(1);
  ProposedQuadraticDense layer(6, 2, 3, rng);
  layer.w().value.zero();
  for (nn::Parameter* p : layer.parameters())
    if (p->name.find(".b") != std::string::npos) p->value.zero();
  Tensor x = random_tensor(Shape{4, 6}, 2);
  const Tensor y_pos = layer.forward(x);
  x *= -1.0f;
  const Tensor y_neg = layer.forward(x);
  for (index_t s = 0; s < 4; ++s)
    for (index_t u = 0; u < 2; ++u)
      // y channels match; f channels flip sign.
      EXPECT_NEAR(y_pos.at(s, u * 4), y_neg.at(s, u * 4), 1e-5f);
}

// Homogeneity: scaling the input by t scales the quadratic part by t² and
// the linear part by t (bias zeroed).
TEST(Properties, ProposedScalingLaw) {
  Rng rng(3);
  ProposedQuadraticDense layer(5, 1, 2, rng);
  for (nn::Parameter* p : layer.parameters())
    if (p->name.find(".b") != std::string::npos) p->value.zero();
  const Tensor x = random_tensor(Shape{1, 5}, 4);

  // Separate the parts via Λ-off runs.
  auto y_of = [&](float t) {
    Tensor xs = x;
    xs *= t;
    return layer.forward(xs)[0];
  };
  Tensor lambda_backup = layer.lambda().value;
  layer.lambda().value.zero();
  const float lin1 = y_of(1.0f), lin2 = y_of(2.0f);
  EXPECT_NEAR(lin2, 2.0f * lin1, 1e-4f + 1e-3f * std::fabs(lin1));
  layer.lambda().value = lambda_backup;
  const float full1 = y_of(1.0f), full2 = y_of(2.0f);
  const float quad1 = full1 - lin1, quad2 = full2 - lin2;
  EXPECT_NEAR(quad2, 4.0f * quad1, 1e-3f + 1e-2f * std::fabs(quad1));
}

// Lemma 1 at the layer level: a GeneralQuadraticDense with M and with
// symmetrize(M) computes identical outputs.
TEST(Properties, GeneralLayerLemma1) {
  Rng rng(5);
  const index_t n = 5;
  GeneralQuadraticDense layer(n, 2, rng, true);
  const Tensor x = random_tensor(Shape{3, n}, 6);
  const Tensor y_orig = layer.forward(x);
  for (index_t u = 0; u < 2; ++u) {
    Tensor m{Shape{n, n}};
    for (index_t i = 0; i < n * n; ++i)
      m[i] = layer.m().value[u * n * n + i];
    const Tensor sym = linalg::symmetrize(m);
    for (index_t i = 0; i < n * n; ++i)
      layer.m().value[u * n * n + i] = sym[i];
  }
  const Tensor y_sym = layer.forward(x);
  EXPECT_LT(max_abs_diff(y_orig, y_sym), 1e-4f);
}

// Rank sweep: the converted layer's y-channel error against the general
// source decreases with k.  Eckart–Young guarantees strict monotonicity
// of the MATRIX error (verified in convert_test.cpp); the error sampled
// on a finite input batch tracks it but may wiggle a few percent, so the
// per-step check carries a 25% slack while the end point must be exact.
class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, MonotoneConversionError) {
  const std::uint64_t seed = 100 + GetParam();
  Rng rng(seed);
  const index_t n = 6;
  GeneralQuadraticDense general(n, 1, rng, true);
  const Tensor x = random_tensor(Shape{24, n}, seed + 1);
  const Tensor y_ref = general.forward(x);
  double prev = 1e30;
  for (index_t k = 1; k <= n; ++k) {
    Rng conv_rng(seed + 2);
    auto converted = convert_layer(general, k, conv_rng);
    const Tensor y = converted->forward(x);
    double err = 0.0;
    for (index_t s = 0; s < 24; ++s) {
      const double d = y.at(s, 0) - y_ref.at(s, 0);
      err += d * d;
    }
    EXPECT_LE(err, prev * 1.25 + 1e-6) << "k=" << k << " seed=" << seed;
    prev = err;
  }
  EXPECT_LT(prev, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankSweep, ::testing::Range(0, 6));

// Conv/dense agreement on genuine spatial extents: evaluating the conv
// layer at one output position must equal the dense layer applied to the
// extracted patch.
TEST(Properties, ProposedConvMatchesDenseOnPatches) {
  Rng rng_conv(7), rng_dense(7);
  const index_t c = 2, k = 2, kernel = 3;
  ProposedQuadConv2d conv(c, 1, kernel, 1, 0, k, rng_conv);
  ProposedQuadraticDense dense(c * kernel * kernel, 1, k, rng_dense);

  const Tensor image = random_tensor(Shape{1, c, 5, 5}, 8);
  const Tensor out = conv.forward(image);  // [1, 3, 3, 3]

  // Extract the center patch (output position (1,1)).
  Tensor patch{Shape{1, c * kernel * kernel}};
  index_t idx = 0;
  for (index_t ch = 0; ch < c; ++ch)
    for (index_t ky = 0; ky < kernel; ++ky)
      for (index_t kx = 0; kx < kernel; ++kx)
        patch[idx++] = image.at(0, ch, 1 + ky, 1 + kx);
  const Tensor dense_out = dense.forward(patch);
  for (index_t ch = 0; ch < k + 1; ++ch)
    EXPECT_NEAR(out.at(0, ch, 1, 1), dense_out.at(0, ch), 1e-4f)
        << "channel " << ch;
}

// Per-family determinism: same seed -> bit-identical outputs.
TEST(Properties, AllFamiliesDeterministic) {
  for (NeuronKind kind :
       {NeuronKind::kGeneral, NeuronKind::kPure, NeuronKind::kBuKarpatne,
        NeuronKind::kLowRank, NeuronKind::kQuad1, NeuronKind::kQuad2,
        NeuronKind::kKervolution, NeuronKind::kProposed}) {
    const NeuronSpec spec = NeuronSpec::of(kind, 3);
    Rng rng_a(9), rng_b(9);
    auto a = make_conv_neuron(spec, 2, 8, 3, 1, 1, rng_a, "det_a");
    auto b = make_conv_neuron(spec, 2, 8, 3, 1, 1, rng_b, "det_b");
    const Tensor x = random_tensor(Shape{1, 2, 5, 5}, 10);
    EXPECT_EQ(max_abs_diff(a->forward(x), b->forward(x)), 0.0f)
        << spec.kind_name();
  }
}

// Gradient accumulation contract: two backward passes double the grads
// for every family (the optimizers rely on this).
TEST(Properties, GradientsAccumulateAcrossFamilies) {
  for (NeuronKind kind :
       {NeuronKind::kLowRank, NeuronKind::kQuad1, NeuronKind::kQuad2,
        NeuronKind::kBuKarpatne, NeuronKind::kProposed}) {
    const NeuronSpec spec = NeuronSpec::of(kind, 2);
    Rng rng(11);
    const index_t out = kind == NeuronKind::kProposed ? 6 : 4;
    auto layer = make_dense_neuron(spec, 5, out, rng, "acc");
    const Tensor x = random_tensor(Shape{2, 5}, 12);
    const Tensor g = random_tensor(Shape{2, out}, 13);
    layer->forward(x);
    layer->backward(g);
    std::vector<Tensor> once;
    for (nn::Parameter* p : layer->parameters()) once.push_back(p->grad);
    layer->forward(x);
    layer->backward(g);
    std::size_t i = 0;
    for (nn::Parameter* p : layer->parameters()) {
      EXPECT_LT(max_abs_diff(p->grad, once[i] * 2.0f), 1e-4f)
          << spec.kind_name() << " " << p->name;
      ++i;
    }
  }
}

}  // namespace
}  // namespace qdnn::quadratic
