#include "nn/dropout.h"

namespace qdnn::nn {

Dropout::Dropout(float p, Rng& rng, std::string name)
    : p_(p), rng_(&rng), name_(std::move(name)) {
  QDNN_CHECK(p >= 0.0f && p < 1.0f, "Dropout: p must be in [0, 1)");
}

Tensor Dropout::forward(const Tensor& input) {
  if (!training_ || p_ == 0.0f) {
    identity_ = true;
    return input;
  }
  identity_ = false;
  cached_mask_ = Tensor{input.shape()};
  const float scale = 1.0f / (1.0f - p_);
  Tensor out = input;
  for (index_t i = 0; i < out.numel(); ++i) {
    if (rng_->bernoulli(p_)) {
      out[i] = 0.0f;
    } else {
      cached_mask_[i] = scale;
      out[i] *= scale;
    }
  }
  return out;
}

void Dropout::forward_into(const ConstTensorView& input, const TensorView& output,
                           Workspace&) {
  QDNN_CHECK(!training_ || p_ == 0.0f,
             name_ << ": forward_into is an inference entry point — call "
                      "set_training(false) first");
  copy_into(input, output);
}

Tensor Dropout::backward(const Tensor& grad_output) {
  if (identity_) return grad_output;
  QDNN_CHECK(!cached_mask_.empty(), name_ << ": backward before forward");
  return hadamard(grad_output, cached_mask_);
}

}  // namespace qdnn::nn
