// Top-k spectral truncation — the paper's Sec. III-A approximation step.
//
// Given a symmetric M, truncate(M, k) keeps the k eigenpairs of largest
// |λ| so that Mᵏ = Qᵏ Λᵏ (Qᵏ)ᵀ is the best rank-k approximation of M in
// Frobenius norm (Eckart–Young–Mirsky).  This is both the initializer for
// converting trained general-quadratic layers into the proposed form
// (quadratic/convert.h) and the object the property tests interrogate.
#pragma once

#include "linalg/eig.h"

namespace qdnn::linalg {

struct LowRankFactors {
  Tensor q;       // [n, k] — first k eigenvector columns
  Tensor lambda;  // [k]    — top-k eigenvalues by magnitude, descending
};

// Truncates a symmetric matrix to its top-k spectral components.
// Requires 1 <= k <= n.
LowRankFactors truncate_top_k(const Tensor& symmetric_m, index_t k);

// The approximation error ‖M − Mᵏ‖_F.  For a symmetric M this equals
// sqrt(Σ_{i>k} λᵢ²), which the tests verify.
double truncation_error(const Tensor& symmetric_m, const LowRankFactors& f);

// Greedy alternative used as a *baseline* in ablations: random rank-k
// factors with the same parameter count (shows the value of spectral
// initialization).
LowRankFactors random_rank_k(index_t n, index_t k, std::uint64_t seed);

}  // namespace qdnn::linalg
