#include "models/transformer/attention.h"

#include <cmath>
#include <cstring>

#include "linalg/gemm.h"
#include "nn/softmax.h"

namespace qdnn::models {

namespace {

// Key/value address resolvers for the shared attention kernel: both
// expose `row(s, j)` — the base of sample s's key (or value) row at
// token position j.  DenseKvAddr strides a contiguous [N·stride, P]
// buffer (the training forward, the serving encoder, the staging
// buffers); PagedKvAddr chases the per-row page table of a
// runtime::KvPagePool (the decode-step KV caches).  The kernel body is
// identical either way, so the addressing scheme can never change the
// reduction order — dense and paged attention are bit-identical.
struct DenseKvAddr {
  const float* base;
  index_t stride;  // rows per sample
  index_t proj;
  const float* row(index_t s, index_t j) const {
    return base + (s * stride + j) * proj;
  }
};

struct PagedKvAddr {
  const float* pool;
  const index_t* table;
  index_t page_floats;
  index_t pages_per_row;
  index_t shift;  // log2(page_tokens)
  index_t mask;   // page_tokens - 1
  index_t slice_offset;
  index_t proj;
  const float* row(index_t s, index_t j) const {
    const index_t page = table[s * pages_per_row + (j >> shift)];
    return pool + page * page_floats + slice_offset + (j & mask) * proj;
  }
};

// Builds the resolver from a view, validating the paged geometry: the
// deepest attended position (tk - 1) must land inside the table, and
// page_tokens must be a power of two (shift/mask addressing).
PagedKvAddr make_paged_addr(const PagedKvView& view, index_t tk,
                            index_t proj, const char* who) {
  QDNN_CHECK(view.valid(), who << ": paged KV view not bound");
  QDNN_CHECK(view.page_tokens >= 1 &&
                 (view.page_tokens & (view.page_tokens - 1)) == 0,
             who << ": page_tokens " << view.page_tokens
                 << " is not a power of two");
  index_t shift = 0;
  while ((static_cast<index_t>(1) << shift) < view.page_tokens) ++shift;
  QDNN_CHECK(((tk - 1) >> shift) < view.pages_per_row,
             who << ": " << tk << " attended positions exceed "
                 << view.pages_per_row << " pages of " << view.page_tokens
                 << " tokens");
  return PagedKvAddr{view.pool,          view.table,
                     view.page_floats,   view.pages_per_row,
                     shift,              view.page_tokens - 1,
                     view.slice_offset,  proj};
}

// Scores → masked softmax → context, shared by the training forward(),
// the serving forward_into() and the KV-cached step kernels — one
// definition so the paths cannot drift.  q [N·Tq, P]; k_src/v_src
// resolve each sample's first Tk key/value rows (see the resolvers
// above); writes softmax weights into `attn` [N, H, Tq, Tk] and
// accumulates the per-head context into `context` [N·Tq, P], which must
// be zeroed by the caller.  `kv_lengths` is a per-sample key-count array
// (or null: all Tk keys valid); `kv_len_bias` is added to every entry —
// the self-attention step passes its per-row ring positions with bias 1.
// Masked tails score -1e30, which softmax maps to exact 0.0f weights, so
// a row with valid_k < Tk is bit-identical to the same row run at
// Tk = valid_k — the property continuous batching (and paged storage:
// positions past valid_k are never dereferenced) rests on.
template <class KvAddr>
void attention_forward_impl(const float* q, const KvAddr& k_src,
                            const KvAddr& v_src, index_t n, index_t n_heads,
                            index_t tq, index_t tk, index_t proj_dim,
                            index_t head_dim, bool causal,
                            const index_t* kv_lengths, index_t kv_len_bias,
                            float* attn, float* context) {
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim));
  for (index_t s = 0; s < n; ++s) {
    const index_t valid_k =
        kv_lengths != nullptr ? kv_lengths[s] + kv_len_bias : tk;
    for (index_t h = 0; h < n_heads; ++h) {
      float* scores = attn + ((s * n_heads + h) * tq) * tk;
      // scores[i, j] = (q_i · k_j) * scale over this head's slice.
      for (index_t i = 0; i < tq; ++i) {
        const float* q_row =
            q + (s * tq + i) * proj_dim + h * head_dim;
        float* score_row = scores + i * tk;
        const index_t limit = causal ? std::min(i + 1, valid_k) : valid_k;
        for (index_t j = 0; j < tk; ++j) {
          if (j < limit) {
            const float* k_row = k_src.row(s, j) + h * head_dim;
            score_row[j] = scale * linalg::dot(q_row, k_row, head_dim);
          } else {
            score_row[j] = -1e30f;  // masked: pad or future position
          }
        }
      }
      nn::softmax_rows(scores, tq, tk);
      // context = attn · V
      for (index_t i = 0; i < tq; ++i) {
        float* ctx_row =
            context + (s * tq + i) * proj_dim + h * head_dim;
        const float* score_row = scores + i * tk;
        for (index_t j = 0; j < tk; ++j) {
          const float a = score_row[j];
          if (a == 0.0f) continue;
          const float* v_row = v_src.row(s, j) + h * head_dim;
          linalg::axpy(head_dim, a, v_row, ctx_row);
        }
      }
    }
  }
}

// Dense entry point (training forward, serving encoder): k/v hold
// `kv_stride` rows per sample of which the first Tk are attended.
void attention_forward(const float* q, const float* k, const float* v,
                       index_t n, index_t n_heads, index_t tq, index_t tk,
                       index_t kv_stride, index_t proj_dim,
                       index_t head_dim, bool causal,
                       const index_t* kv_lengths, index_t kv_len_bias,
                       float* attn, float* context) {
  attention_forward_impl(q, DenseKvAddr{k, kv_stride, proj_dim},
                         DenseKvAddr{v, kv_stride, proj_dim}, n, n_heads,
                         tq, tk, proj_dim, head_dim, causal, kv_lengths,
                         kv_len_bias, attn, context);
}

}  // namespace

MultiHeadAttention::MultiHeadAttention(index_t d_model, index_t n_heads,
                                       index_t proj_dim,
                                       const quadratic::NeuronSpec& spec,
                                       Rng& rng, std::string name)
    : d_model_(d_model),
      n_heads_(n_heads),
      proj_dim_(proj_dim),
      head_dim_(proj_dim / n_heads),
      name_(std::move(name)) {
  QDNN_CHECK(proj_dim % n_heads == 0,
             name_ << ": proj_dim " << proj_dim << " not divisible by "
                   << n_heads << " heads");
  wq_ = quadratic::make_dense_neuron(spec, d_model, proj_dim, rng,
                                     name_ + ".wq");
  wk_ = quadratic::make_dense_neuron(spec, d_model, proj_dim, rng,
                                     name_ + ".wk");
  wv_ = quadratic::make_dense_neuron(spec, d_model, proj_dim, rng,
                                     name_ + ".wv");
  wo_ = quadratic::make_dense_neuron(spec, proj_dim, d_model, rng,
                                     name_ + ".wo");
}

Tensor MultiHeadAttention::forward(const Tensor& q_input,
                                   const Tensor& kv_input, index_t n,
                                   index_t tq, index_t tk, bool causal,
                                   const std::vector<index_t>& kv_lengths) {
  QDNN_CHECK_EQ(q_input.dim(0), n * tq, name_ << ": q rows");
  QDNN_CHECK_EQ(kv_input.dim(0), n * tk, name_ << ": kv rows");
  QDNN_CHECK(kv_lengths.empty() ||
                 static_cast<index_t>(kv_lengths.size()) == n,
             name_ << ": kv_lengths size");
  n_ = n;
  tq_ = tq;
  tk_ = tk;

  q_ = wq_->forward(q_input);
  k_ = wk_->forward(kv_input);
  v_ = wv_->forward(kv_input);

  attn_ = Tensor{Shape{n, n_heads_, tq, tk}};
  Tensor context{Shape{n * tq, proj_dim_}};
  attention_forward(q_.data(), k_.data(), v_.data(), n, n_heads_, tq, tk,
                    /*kv_stride=*/tk, proj_dim_, head_dim_, causal,
                    kv_lengths.empty() ? nullptr : kv_lengths.data(),
                    /*kv_len_bias=*/0, attn_.data(), context.data());
  // Keep the context for wo_'s backward via its own cache.
  return wo_->forward(context);
}

std::pair<Tensor, Tensor> MultiHeadAttention::backward_qkv(
    const Tensor& grad_output) {
  QDNN_CHECK(n_ > 0, name_ << ": backward before forward");
  const float scale = 1.0f / std::sqrt(static_cast<float>(head_dim_));

  Tensor g_context = wo_->backward(grad_output);  // [N·Tq, P]
  Tensor g_q{Shape{n_ * tq_, proj_dim_}};
  Tensor g_k{Shape{n_ * tk_, proj_dim_}};
  Tensor g_v{Shape{n_ * tk_, proj_dim_}};

  std::vector<float> g_scores(static_cast<std::size_t>(tq_ * tk_));
  for (index_t s = 0; s < n_; ++s) {
    for (index_t h = 0; h < n_heads_; ++h) {
      const float* attn = attn_.data() + ((s * n_heads_ + h) * tq_) * tk_;
      // dL/d(attn[i,j]) = g_ctx_i · v_j ; dL/dv_j += attn[i,j] g_ctx_i
      for (index_t i = 0; i < tq_; ++i) {
        const float* gc_row =
            g_context.data() + (s * tq_ + i) * proj_dim_ + h * head_dim_;
        const float* attn_row = attn + i * tk_;
        float* gs_row = g_scores.data() + i * tk_;
        for (index_t j = 0; j < tk_; ++j) {
          const float* v_row =
              v_.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
          gs_row[j] = linalg::dot(gc_row, v_row, head_dim_);
          if (attn_row[j] != 0.0f) {
            float* gv_row =
                g_v.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
            linalg::axpy(head_dim_, attn_row[j], gc_row, gv_row);
          }
        }
      }
      // Back through softmax (masked entries have attn = 0, so they
      // receive zero gradient automatically).
      nn::softmax_backward_rows(attn, g_scores.data(), tq_, tk_);
      // dq_i += scale * Σ_j gs[i,j] k_j ; dk_j += scale * Σ_i gs[i,j] q_i
      for (index_t i = 0; i < tq_; ++i) {
        float* gq_row =
            g_q.data() + (s * tq_ + i) * proj_dim_ + h * head_dim_;
        const float* q_row =
            q_.data() + (s * tq_ + i) * proj_dim_ + h * head_dim_;
        const float* gs_row = g_scores.data() + i * tk_;
        for (index_t j = 0; j < tk_; ++j) {
          const float g = gs_row[j] * scale;
          if (g == 0.0f) continue;
          const float* k_row =
              k_.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
          linalg::axpy(head_dim_, g, k_row, gq_row);
          float* gk_row =
              g_k.data() + (s * tk_ + j) * proj_dim_ + h * head_dim_;
          linalg::axpy(head_dim_, g, q_row, gk_row);
        }
      }
    }
  }

  Tensor grad_q_input = wq_->backward(g_q);
  Tensor grad_kv_input = wk_->backward(g_k);
  grad_kv_input += wv_->backward(g_v);
  return {std::move(grad_q_input), std::move(grad_kv_input)};
}

// ---------------------------------------------------------------------------
// Module API: full-length non-causal self-attention on [N, T, D].
// ---------------------------------------------------------------------------

Tensor MultiHeadAttention::forward(const Tensor& x) {
  QDNN_CHECK(x.rank() == 3 && x.dim(2) == d_model_,
             name_ << ": expected [N, T, " << d_model_ << "]");
  const index_t n = x.dim(0), t = x.dim(1);
  const Tensor flat = x.reshaped(Shape{n * t, d_model_});
  return forward(flat, flat, n, t, t, /*causal=*/false, {})
      .reshaped(Shape{n, t, d_model_});
}

Tensor MultiHeadAttention::backward(const Tensor& grad_output) {
  QDNN_CHECK(grad_output.rank() == 3, name_ << ": expected [N, T, D] grad");
  const index_t n = grad_output.dim(0), t = grad_output.dim(1);
  auto [g_q, g_kv] =
      backward_qkv(grad_output.reshaped(Shape{n * t, d_model_}));
  g_q += g_kv;  // q and kv came from the same input
  return g_q.reshaped(Shape{n, t, d_model_});
}

Shape MultiHeadAttention::output_shape(const Shape& input_shape) const {
  QDNN_CHECK(input_shape.rank() == 3 && input_shape[2] == d_model_,
             name_ << ": expected [N, T, " << d_model_ << "]");
  return input_shape;
}

bool MultiHeadAttention::supports_forward_into() const {
  return wq_->supports_forward_into() && wk_->supports_forward_into() &&
         wv_->supports_forward_into() && wo_->supports_forward_into();
}

void MultiHeadAttention::forward_into(const ConstTensorView& input,
                                      const TensorView& output,
                                      Workspace& ws) {
  self_forward_into(input, output, /*kv_lengths=*/nullptr, ws);
}

void MultiHeadAttention::self_forward_into(const ConstTensorView& input,
                                           const TensorView& output,
                                           const index_t* kv_lengths,
                                           Workspace& ws) {
  QDNN_CHECK(input.rank() == 3 && input.dim(2) == d_model_,
             name_ << ": expected [N, T, " << d_model_ << "]");
  QDNN_CHECK(output.shape() == input.shape(),
             name_ << ": bad output view " << output.shape());
  const index_t n = input.dim(0), t = input.dim(1);
  const index_t nt = n * t;
  if (kv_lengths != nullptr)
    for (index_t s = 0; s < n; ++s)
      QDNN_CHECK(kv_lengths[s] >= 1 && kv_lengths[s] <= t,
                 name_ << ": kv_lengths[" << s << "] = " << kv_lengths[s]
                       << " outside [1, " << t << "]");

  // Projections, scores and context all live in the workspace; the
  // training caches (q_, k_, v_, attn_) are never touched, so concurrent
  // shard calls are safe.
  const ConstTensorView flat_in(Shape{nt, d_model_}, input.data());
  float* q = ws.alloc(nt * proj_dim_);
  float* k = ws.alloc(nt * proj_dim_);
  float* v = ws.alloc(nt * proj_dim_);
  wq_->forward_into(flat_in, TensorView(Shape{nt, proj_dim_}, q), ws);
  wk_->forward_into(flat_in, TensorView(Shape{nt, proj_dim_}, k), ws);
  wv_->forward_into(flat_in, TensorView(Shape{nt, proj_dim_}, v), ws);

  float* attn = ws.alloc(n * n_heads_ * t * t);
  float* context = ws.alloc(nt * proj_dim_);
  for (index_t i = 0; i < nt * proj_dim_; ++i) context[i] = 0.0f;
  attention_forward(q, k, v, n, n_heads_, t, t, /*kv_stride=*/t, proj_dim_,
                    head_dim_, /*causal=*/false, kv_lengths,
                    /*kv_len_bias=*/0, attn, context);

  wo_->forward_into(ConstTensorView(Shape{nt, proj_dim_}, context),
                    TensorView(Shape{nt, d_model_}, output.data()), ws);
}

// ---------------------------------------------------------------------------
// Incremental (KV-cached) decoding API.
// ---------------------------------------------------------------------------

void MultiHeadAttention::self_attend_step(const ConstTensorView& x,
                                          const TensorView& out,
                                          const PagedKvView& k_cache,
                                          const PagedKvView& v_cache,
                                          index_t capacity,
                                          const index_t* row_steps,
                                          Workspace& ws) {
  QDNN_CHECK(x.rank() == 2 && x.dim(1) == d_model_,
             name_ << ": step input must be [N, " << d_model_ << "]");
  const index_t n = x.dim(0);
  QDNN_CHECK(row_steps != nullptr, name_ << ": null row_steps");
  index_t max_step = 0;
  for (index_t s = 0; s < n; ++s) {
    QDNN_CHECK(row_steps[s] >= 0 && row_steps[s] < capacity,
               name_ << ": row " << s << " step " << row_steps[s]
                     << " outside cache capacity " << capacity);
    max_step = std::max(max_step, row_steps[s]);
  }
  QDNN_CHECK(out.rank() == 2 && out.dim(0) == n && out.dim(1) == d_model_,
             name_ << ": bad step output view " << out.shape());
  const index_t tk = max_step + 1;
  const PagedKvAddr k_addr = make_paged_addr(k_cache, tk, proj_dim_, "self");
  const PagedKvAddr v_addr = make_paged_addr(v_cache, tk, proj_dim_, "self");

  // Project the new tokens in one batch gemm; scatter each row's K/V at
  // its own paged ring position (parked rows' table entries point at the
  // pool's sentinel page, so their writes are harmless).
  float* q = ws.alloc(n * proj_dim_);
  float* k_new = ws.alloc(n * proj_dim_);
  float* v_new = ws.alloc(n * proj_dim_);
  wq_->forward_into(x, TensorView(Shape{n, proj_dim_}, q), ws);
  wk_->forward_into(x, TensorView(Shape{n, proj_dim_}, k_new), ws);
  wv_->forward_into(x, TensorView(Shape{n, proj_dim_}, v_new), ws);
  for (index_t s = 0; s < n; ++s) {
    float* k_dst = const_cast<float*>(k_addr.row(s, row_steps[s]));
    float* v_dst = const_cast<float*>(v_addr.row(s, row_steps[s]));
    std::memcpy(k_dst, k_new + s * proj_dim_,
                static_cast<std::size_t>(proj_dim_) * sizeof(float));
    std::memcpy(v_dst, v_new + s * proj_dim_,
                static_cast<std::size_t>(proj_dim_) * sizeof(float));
  }

  // Row s attends over its cached prefix [0, row_steps[s]] — exactly the
  // last row of a causal full-prefix pass over that row alone.  Rows
  // behind the batch-deepest position mask the tail (exact-zero softmax
  // weights, positions past it never dereferenced), so mixed ring
  // positions share one kernel call.
  float* attn = ws.alloc(n * n_heads_ * tk);
  float* context = ws.alloc(n * proj_dim_);
  for (index_t i = 0; i < n * proj_dim_; ++i) context[i] = 0.0f;
  attention_forward_impl(q, k_addr, v_addr, n, n_heads_,
                         /*tq=*/1, tk, proj_dim_, head_dim_,
                         /*causal=*/false, row_steps,
                         /*kv_len_bias=*/1, attn, context);

  wo_->forward_into(ConstTensorView(Shape{n, proj_dim_}, context),
                    TensorView(Shape{n, d_model_}, out.data()), ws);
}

void MultiHeadAttention::project_kv(const ConstTensorView& enc_flat,
                                    index_t n, index_t tk,
                                    const TensorView& k_cache,
                                    const TensorView& v_cache,
                                    Workspace& ws) {
  QDNN_CHECK(enc_flat.rank() == 2 && enc_flat.dim(0) == n * tk &&
                 enc_flat.dim(1) == d_model_,
             name_ << ": encoder rows must be [N·Tk, " << d_model_
                   << "], got " << enc_flat.shape());
  const Shape cache_shape{n, tk, proj_dim_};
  QDNN_CHECK(k_cache.shape() == cache_shape &&
                 v_cache.shape() == cache_shape,
             name_ << ": KV cache must be " << cache_shape << ", got "
                   << k_cache.shape() << " / " << v_cache.shape());
  // [N, Tk, P] is contiguous [N·Tk, P]: project straight into the cache.
  wk_->forward_into(enc_flat,
                    TensorView(Shape{n * tk, proj_dim_}, k_cache.data()),
                    ws);
  wv_->forward_into(enc_flat,
                    TensorView(Shape{n * tk, proj_dim_}, v_cache.data()),
                    ws);
}

void MultiHeadAttention::cross_attend_step(
    const ConstTensorView& x, const TensorView& out,
    const PagedKvView& k_cache, const PagedKvView& v_cache, index_t tk,
    const std::vector<index_t>& kv_lengths, Workspace& ws) {
  QDNN_CHECK(x.rank() == 2 && x.dim(1) == d_model_,
             name_ << ": step input must be [N, " << d_model_ << "]");
  const index_t n = x.dim(0);
  QDNN_CHECK(tk >= 1, name_ << ": cross capacity must be >= 1, got " << tk);
  // At least one length per sample: a session bound below its max_batch
  // width keeps the full-width per-row state (tail entries unused).
  QDNN_CHECK(kv_lengths.empty() ||
                 static_cast<index_t>(kv_lengths.size()) >= n,
             name_ << ": " << kv_lengths.size()
                   << " kv_lengths for batch " << n);
  QDNN_CHECK(out.rank() == 2 && out.dim(0) == n && out.dim(1) == d_model_,
             name_ << ": bad step output view " << out.shape());
  const PagedKvAddr k_addr = make_paged_addr(k_cache, tk, proj_dim_,
                                             "cross");
  const PagedKvAddr v_addr = make_paged_addr(v_cache, tk, proj_dim_,
                                             "cross");

  float* q = ws.alloc(n * proj_dim_);
  wq_->forward_into(x, TensorView(Shape{n, proj_dim_}, q), ws);

  float* attn = ws.alloc(n * n_heads_ * tk);
  float* context = ws.alloc(n * proj_dim_);
  for (index_t i = 0; i < n * proj_dim_; ++i) context[i] = 0.0f;
  attention_forward_impl(q, k_addr, v_addr, n, n_heads_,
                         /*tq=*/1, tk, proj_dim_, head_dim_,
                         /*causal=*/false,
                         kv_lengths.empty() ? nullptr : kv_lengths.data(),
                         /*kv_len_bias=*/0, attn, context);

  wo_->forward_into(ConstTensorView(Shape{n, proj_dim_}, context),
                    TensorView(Shape{n, d_model_}, out.data()), ws);
}

void MultiHeadAttention::freeze() {
  wq_->freeze();
  wk_->freeze();
  wv_->freeze();
  wo_->freeze();
  // Stale training caches have no business under a serving process.
  q_ = Tensor{};
  k_ = Tensor{};
  v_ = Tensor{};
  attn_ = Tensor{};
  n_ = tq_ = tk_ = 0;
  Module::freeze();
}

void MultiHeadAttention::unfreeze() {
  wq_->unfreeze();
  wk_->unfreeze();
  wv_->unfreeze();
  wo_->unfreeze();
  Module::unfreeze();
}

std::vector<nn::Parameter*> MultiHeadAttention::parameters() {
  std::vector<nn::Parameter*> params;
  for (nn::Module* m : {wq_.get(), wk_.get(), wv_.get(), wo_.get()})
    for (nn::Parameter* p : m->parameters()) params.push_back(p);
  return params;
}

void MultiHeadAttention::set_training(bool training) {
  nn::Module::set_training(training);
  wq_->set_training(training);
  wk_->set_training(training);
  wv_->set_training(training);
  wo_->set_training(training);
}

// ---------------------------------------------------------------------------
// SelfAttentionStep
// ---------------------------------------------------------------------------

SelfAttentionStep::SelfAttentionStep(MultiHeadAttention& attn,
                                     std::string name)
    : attn_(&attn), name_(std::move(name)) {}

void SelfAttentionStep::bind(const PagedKvView& k_cache,
                             const PagedKvView& v_cache, index_t capacity,
                             const std::vector<index_t>* row_steps) {
  QDNN_CHECK(row_steps != nullptr, name_ << ": null row_steps counters");
  QDNN_CHECK(k_cache.valid() && v_cache.valid(),
             name_ << ": invalid paged KV view");
  QDNN_CHECK(capacity >= 1,
             name_ << ": capacity must be >= 1, got " << capacity);
  QDNN_CHECK(row_steps_ == nullptr || row_steps_ == row_steps,
             name_ << ": decoder already bound by another DecodeSession — "
                      "destroy it before binding a new one");
  k_ = k_cache;
  v_ = v_cache;
  capacity_ = capacity;
  row_steps_ = row_steps;
}

void SelfAttentionStep::unbind() {
  k_ = PagedKvView{};
  v_ = PagedKvView{};
  capacity_ = 0;
  row_steps_ = nullptr;
}

Tensor SelfAttentionStep::forward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": serving-only stage — train through "
                             "DecoderLayer::forward");
  return {};
}

Tensor SelfAttentionStep::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": serving-only stage has no backward");
  return {};
}

Shape SelfAttentionStep::output_shape(const Shape& input_shape) const {
  QDNN_CHECK(input_shape.rank() == 2,
             name_ << ": expected [N, D] step input");
  return input_shape;
}

bool SelfAttentionStep::supports_forward_into() const {
  return attn_->supports_forward_into();
}

void SelfAttentionStep::forward_into(const ConstTensorView& input,
                                     const TensorView& output,
                                     Workspace& ws) {
  QDNN_CHECK(bound(), name_ << ": KV cache not bound (prime a "
                               "DecodeSession first)");
  QDNN_CHECK(static_cast<index_t>(row_steps_->size()) >= input.dim(0),
             name_ << ": " << row_steps_->size()
                   << " row step counters for batch " << input.dim(0));
  attn_->self_attend_step(input, output, k_, v_, capacity_,
                          row_steps_->data(), ws);
}

// ---------------------------------------------------------------------------
// CrossAttentionStep
// ---------------------------------------------------------------------------

CrossAttentionStep::CrossAttentionStep(MultiHeadAttention& attn,
                                       std::string name)
    : attn_(&attn), name_(std::move(name)) {}

void CrossAttentionStep::bind(const PagedKvView& k_cache,
                              const PagedKvView& v_cache, index_t tk,
                              const std::vector<index_t>* kv_lengths) {
  QDNN_CHECK(kv_lengths != nullptr, name_ << ": null kv_lengths");
  QDNN_CHECK(k_cache.valid() && v_cache.valid(),
             name_ << ": invalid paged KV view");
  QDNN_CHECK(tk >= 1, name_ << ": tk must be >= 1, got " << tk);
  QDNN_CHECK(kv_lengths_ == nullptr || kv_lengths_ == kv_lengths,
             name_ << ": decoder already bound by another DecodeSession — "
                      "destroy it before binding a new one");
  k_ = k_cache;
  v_ = v_cache;
  tk_ = tk;
  kv_lengths_ = kv_lengths;
}

void CrossAttentionStep::unbind() {
  k_ = PagedKvView{};
  v_ = PagedKvView{};
  tk_ = 0;
  kv_lengths_ = nullptr;
}

Tensor CrossAttentionStep::forward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": serving-only stage — train through "
                             "DecoderLayer::forward");
  return {};
}

Tensor CrossAttentionStep::backward(const Tensor&) {
  QDNN_CHECK(false, name_ << ": serving-only stage has no backward");
  return {};
}

Shape CrossAttentionStep::output_shape(const Shape& input_shape) const {
  QDNN_CHECK(input_shape.rank() == 2,
             name_ << ": expected [N, D] step input");
  return input_shape;
}

bool CrossAttentionStep::supports_forward_into() const {
  return attn_->supports_forward_into();
}

void CrossAttentionStep::forward_into(const ConstTensorView& input,
                                      const TensorView& output,
                                      Workspace& ws) {
  QDNN_CHECK(bound(), name_ << ": encoder K/V not bound (prime a "
                               "DecodeSession first)");
  attn_->cross_attend_step(input, output, k_, v_, tk_, *kv_lengths_, ws);
}

}  // namespace qdnn::models
