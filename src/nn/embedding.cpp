#include "nn/embedding.h"

#include <cmath>

namespace qdnn::nn {

Embedding::Embedding(index_t vocab_size, index_t dim, Rng& rng,
                     std::string name)
    : vocab_size_(vocab_size),
      dim_(dim),
      name_(std::move(name)),
      weight_(name_ + ".weight", Tensor{Shape{vocab_size, dim}}) {
  QDNN_CHECK(vocab_size > 0 && dim > 0, "Embedding: dims must be positive");
  rng.fill_normal(weight_.value, 0.0f,
                  1.0f / std::sqrt(static_cast<float>(dim)));
  weight_.decay = false;
}

Tensor Embedding::forward(const Tensor& ids) {
  QDNN_CHECK_EQ(ids.rank(), 2, name_ << ": expected [N, T]");
  cached_ids_ = ids;
  const index_t n = ids.dim(0), t = ids.dim(1);
  Tensor out{Shape{n, t, dim_}};
  for (index_t i = 0; i < n * t; ++i) {
    const index_t id = static_cast<index_t>(ids[i]);
    QDNN_CHECK(id >= 0 && id < vocab_size_,
               name_ << ": token id " << id << " out of vocab "
                     << vocab_size_);
    const float* src = weight_.value.data() + id * dim_;
    float* dst = out.data() + i * dim_;
    for (index_t d = 0; d < dim_; ++d) dst[d] = src[d];
  }
  return out;
}

void Embedding::forward_into(const ConstTensorView& ids, const TensorView& output,
                             Workspace&) {
  QDNN_CHECK_EQ(ids.rank(), 2, name_ << ": expected [N, T]");
  const index_t n = ids.dim(0), t = ids.dim(1);
  QDNN_CHECK(output.rank() == 3 && output.dim(0) == n &&
                 output.dim(1) == t && output.dim(2) == dim_,
             name_ << ": bad output view " << output.shape());
  for (index_t i = 0; i < n * t; ++i) {
    const index_t id = static_cast<index_t>(ids[i]);
    QDNN_CHECK(id >= 0 && id < vocab_size_,
               name_ << ": token id " << id << " out of vocab "
                     << vocab_size_);
    const float* src = weight_.value.data() + id * dim_;
    float* dst = output.data() + i * dim_;
    for (index_t d = 0; d < dim_; ++d) dst[d] = src[d];
  }
}

Tensor Embedding::backward(const Tensor& grad_output) {
  QDNN_CHECK(!cached_ids_.empty(), name_ << ": backward before forward");
  const index_t n = cached_ids_.dim(0), t = cached_ids_.dim(1);
  QDNN_CHECK(grad_output.shape() == Shape({n, t, dim_}),
             name_ << ": grad shape");
  for (index_t i = 0; i < n * t; ++i) {
    const index_t id = static_cast<index_t>(cached_ids_[i]);
    const float* src = grad_output.data() + i * dim_;
    float* dst = weight_.grad.data() + id * dim_;
    for (index_t d = 0; d < dim_; ++d) dst[d] += src[d];
  }
  // Ids are not differentiable; return an empty gradient.
  return Tensor{};
}

std::vector<Parameter*> Embedding::parameters() { return {&weight_}; }

}  // namespace qdnn::nn
