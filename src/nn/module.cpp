#include "nn/module.h"

namespace qdnn::nn {

// Fallback adapter: route the v2 entry point through the legacy copying
// forward().  Correct for every module (shape mismatches are caught
// against output_shape), but pays v1 allocation costs — migrated modules
// override this with a native workspace-backed implementation.
void Module::forward_into(const ConstTensorView& input, const TensorView& output,
                          Workspace& /*ws*/) {
  Tensor in = input.to_tensor();
  Tensor out = forward(in);
  QDNN_CHECK(out.shape() == output.shape(),
             name() << ": forward() produced " << out.shape()
                    << " but forward_into output is " << output.shape()
                    << " (override output_shape()?)");
  std::memcpy(output.data(), out.data(),
              static_cast<std::size_t>(out.numel()) * sizeof(float));
}

}  // namespace qdnn::nn
