// Pooling layers for the ResNet families.
//
// GlobalAvgPool2d ends every CIFAR ResNet ([N,C,H,W] -> [N,C]); MaxPool2d
// is the ResNet-18 stem pool; AvgPool2d is available for ablations.
#pragma once

#include "nn/module.h"

namespace qdnn::nn {

class GlobalAvgPool2d : public Module {
 public:
  explicit GlobalAvgPool2d(std::string name = "gap") : name_(std::move(name)) {}
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  bool supports_forward_into() const override { return true; }
  void forward_into(const ConstTensorView& input, const TensorView& output,
                    Workspace& ws) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape cached_shape_;
};

class MaxPool2d : public Module {
 public:
  MaxPool2d(index_t kernel, index_t stride, index_t padding = 0,
            std::string name = "maxpool");
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  void freeze() override {
    argmax_.clear();
    argmax_.shrink_to_fit();
    Module::freeze();
  }
  std::string name() const override { return name_; }

 private:
  index_t kernel_, stride_, padding_;
  std::string name_;
  Shape cached_in_shape_;
  std::vector<index_t> argmax_;  // flat input index per output element
};

class AvgPool2d : public Module {
 public:
  AvgPool2d(index_t kernel, index_t stride, std::string name = "avgpool");
  Tensor forward(const Tensor& input) override;
  Tensor backward(const Tensor& grad_output) override;
  Shape output_shape(const Shape& input_shape) const override;
  std::string name() const override { return name_; }

 private:
  index_t kernel_, stride_;
  std::string name_;
  Shape cached_in_shape_;
};

}  // namespace qdnn::nn
