// InferenceSession: the serving facade over a trained model.
//
// A session takes ownership of a built Module, switches it to eval mode,
// and prepares everything a hot serving loop needs exactly once:
//
//   * a top-level Sequential is flattened into per-layer stages (any other
//     Module runs as a single stage through its forward_into, native or
//     legacy-adapted);
//   * per-stage output shapes are precomputed via Module::output_shape;
//   * each shard owns two private ping-pong activation buffers for its
//     intermediate stage boundaries (shards run the pipeline without a
//     stage barrier, so intermediates must not be shared), while every
//     final-stage output lands in one shared output buffer at the
//     shard's disjoint row slice;
//   * each shard owns a Workspace whose watermark is discovered by a
//     warm-up pass and then consolidated into one contiguous block.
//
// After warm-up, run() on a fixed batch size performs ZERO heap
// allocations through every stage with a native forward_into (asserted by
// tests/runtime/session_test.cpp with a counting global allocator).
// Changing the batch size re-binds the internal views (a handful of small
// allocations), then the new size is again allocation-free.
//
// num_threads > 1 shards the batch rows across a small persistent thread
// pool.  This requires every stage to have a native forward_into (the
// legacy adapter mutates per-module caches shared by all shards, so the
// constructor rejects sharded sessions over unmigrated modules) and
// relies on stages being per-sample independent at inference, which
// holds for all qdnn layers in eval mode (BatchNorm uses running stats).
// Results are bit-identical to the single-threaded path.
//
// Thread-safety: run() is synchronous and not reentrant; drive one
// session per serving thread or serialize callers.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "core/workspace.h"
#include "nn/module.h"

namespace qdnn::runtime {

struct SessionConfig {
  // Per-sample input shape, without the batch dimension — e.g. {in} for
  // dense models, {C, H, W} for image models.
  Shape sample_shape;
  // Largest batch run() will be asked to serve (activation buffers are
  // sized for it).
  index_t max_batch = 1;
  // 1 runs inline; >1 shards batch rows across a persistent pool.
  int num_threads = 1;
  // Run one dummy pass at construction so the workspace watermark is
  // discovered (and consolidated) before the first real request.
  bool warmup = true;
};

class InferenceSession {
 public:
  InferenceSession(nn::ModulePtr model, SessionConfig config);
  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  // Serves one batch [n, sample_shape...], n in [1, max_batch].  The
  // returned view aliases an internal activation buffer and is valid
  // until the next run() call (copy it out with to_tensor() to keep it).
  // Views pass and return by reference so the steady-state path never
  // copies a Shape.
  const ConstTensorView& run(const Tensor& batch);
  const ConstTensorView& run(const ConstTensorView& batch);

  // Logits shape for a given batch size.
  Shape output_shape(index_t batch_size) const;

  index_t max_batch() const { return config_.max_batch; }
  int num_threads() const { return static_cast<int>(shards_.size()); }
  index_t num_stages() const { return static_cast<index_t>(stages_.size()); }
  // True when every stage has a native (allocation-free) forward_into.
  bool fully_native() const;
  // Footprint introspection, in floats.
  index_t activation_floats() const;
  index_t workspace_floats() const;

  const nn::Module& model() const { return *model_; }

 private:
  // One contiguous row-range of the batch, processed end-to-end by one
  // thread.  Intermediate boundaries live in the shard's private
  // ping-pong buffers (shards are not stage-synchronized, so sharing
  // them would race); only the final stage writes the shared output
  // buffer, at this shard's disjoint row slice.  The stage-0 input view
  // is re-pointed at the caller's data every run.
  struct Shard {
    index_t row_begin = 0;
    index_t rows = 0;
    Tensor buffers[2];                       // private intermediates
    std::vector<ConstTensorView> in_views;   // per stage
    std::vector<TensorView> out_views;       // per stage
    Workspace ws;
  };

  void bind(index_t n);
  void run_shard(Shard& shard, const float* input) const;
  const ConstTensorView& run_impl(const float* data, index_t n);
  void check_input_shape(const Shape& shape) const;
  Shape batch_shape(index_t n) const;
  void worker_loop(int shard_index);
  void shutdown_workers();

  nn::ModulePtr model_;
  SessionConfig config_;
  std::vector<nn::Module*> stages_;
  index_t sample_numel_ = 0;
  // Per-sample numel at each stage output — constant across batch sizes.
  std::vector<index_t> stage_sample_numel_;
  Tensor output_buffer_;  // [max_batch · last-stage width], shared
  std::vector<Shard> shards_;
  ConstTensorView output_view_;
  index_t bound_n_ = 0;

  // Persistent worker pool (empty when num_threads == 1).
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_, done_cv_;
  std::uint64_t job_id_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  const float* job_input_ = nullptr;
  std::exception_ptr job_error_;
};

}  // namespace qdnn::runtime
