// Module: the layer abstraction of qdnn.
//
// qdnn uses explicit forward/backward (not taped autograd): forward()
// caches whatever the layer needs, backward(grad_out) returns the gradient
// w.r.t. the layer input and accumulates parameter gradients.  All
// backward implementations are validated against central finite
// differences in tests/nn/gradcheck_test.cpp.
//
// Two execution APIs
// ------------------
//  * v1 (training): `Tensor forward(const Tensor&)` — value semantics,
//    allocates its output, caches activations for backward().
//  * v2 (inference): `forward_into(const ConstTensorView& in, const TensorView& out,
//    Workspace& ws)` — writes the result into caller-owned memory and
//    draws all scratch from `ws`.  Implementations must not allocate, must
//    not cache (backward() after forward_into() is undefined), and must
//    not reset `ws` (the pass driver owns the reset points).  `in` and
//    `out` never alias.  `output_shape(in_shape)` reports the result shape
//    so drivers (runtime::InferenceSession) can preallocate buffers before
//    any data flows.
//
// Every module inherits a default forward_into() adapter that routes
// through the legacy copying forward(), so v1-only modules work inside v2
// drivers unchanged (at v1 cost).  Migrated modules override both
// forward_into() and supports_forward_into(); shape-changing modules must
// also override output_shape() (the default is shape-preserving).
//
// Data layout conventions:
//   dense activations   [N, D]
//   images              [N, C, H, W]
//   token sequences     [N, T] (ids) / [N, T, D] (embedded, flattened to
//                       [N*T, D] for dense sublayers)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/tensor_view.h"
#include "core/workspace.h"
#include "nn/parameter.h"

namespace qdnn::nn {

// A named non-trainable tensor owned by a module — persistent state that
// is not updated by the optimizer but must survive checkpointing (the
// canonical example: BatchNorm running statistics).
struct NamedBuffer {
  std::string name;
  Tensor* tensor = nullptr;
};

class Module {
 public:
  virtual ~Module() = default;

  // Computes the layer output and caches activations needed by backward.
  virtual Tensor forward(const Tensor& input) = 0;

  // Given dL/d(output), accumulates dL/d(params) into Parameter::grad and
  // returns dL/d(input).  Must be called after a matching forward().
  virtual Tensor backward(const Tensor& grad_output) = 0;

  // --- v2 inference API --------------------------------------------------

  // Shape of the output produced for an input of `input_shape`.  Default:
  // shape-preserving (element-wise layers, norms, dropout).
  virtual Shape output_shape(const Shape& input_shape) const {
    return input_shape;
  }

  // True when forward_into() is a native implementation that performs no
  // heap allocation and touches no shared module state (so concurrent
  // calls on disjoint batches are safe).  False for the legacy-forward()
  // adapter and for overrides that are native but still allocate
  // (nested Sequential).
  virtual bool supports_forward_into() const { return false; }

  // Writes the result of the layer into `output` (whose shape must equal
  // output_shape(input.shape())), drawing scratch from `ws`.  The default
  // adapter materializes Tensors and calls forward() — correct for every
  // module, allocation-free for none.
  virtual void forward_into(const ConstTensorView& input, const TensorView& output,
                            Workspace& ws);

  // All trainable parameters owned by this module (recursively).
  virtual std::vector<Parameter*> parameters() { return {}; }

  // All persistent non-trainable state (recursively) — saved and restored
  // by nn::save_checkpoint/load_checkpoint alongside the parameters.
  virtual std::vector<NamedBuffer> buffers() { return {}; }

  // Human-readable identifier used in analysis outputs (Fig 7).
  virtual std::string name() const = 0;

  virtual void set_training(bool training) { training_ = training; }
  bool training() const { return training_; }

  void zero_grad() {
    for (Parameter* p : parameters()) p->zero_grad();
  }

  index_t num_parameters() {
    index_t n = 0;
    for (Parameter* p : parameters()) n += p->numel();
    return n;
  }

 protected:
  bool training_ = true;
};

using ModulePtr = std::unique_ptr<Module>;

}  // namespace qdnn::nn
